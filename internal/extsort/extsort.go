// Package extsort implements external merge sort with approx-refine run
// formation — the integration path the paper sketches in Section 4.1:
// "If the data is initially in the hard disk, we need to adopt more
// advanced external memory sorting algorithms, for which the proposed
// approx-refine scheme can be used in their in-memory sorting steps."
//
// SortStream reads a stream of little-endian uint32 keys, forms sorted
// runs by sorting each memory-sized chunk on the hybrid
// precise/approximate system (internal/core), spills the runs to
// temporary files, and k-way-merges them (multi-pass when the run count
// exceeds the fan-in) into the output. Runs are bit-exact sorted — the
// refine stage guarantees it — so the merge needs no special handling.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"approxsort/internal/core"
)

// Config controls the external sort.
type Config struct {
	// Core configures the in-memory run formation (algorithm, T, seed).
	// Baseline and sortedness measurement are forced off.
	Core core.Config

	// RunSize is the number of records sorted per in-memory run
	// (default 1<<20).
	RunSize int

	// FanIn is the merge width (default 16, minimum 2).
	FanIn int

	// TempDir receives the run files (default os.TempDir()). The files
	// are removed as soon as they are merged.
	TempDir string
}

func (c *Config) setDefaults() error {
	if c.RunSize <= 0 {
		c.RunSize = 1 << 20
	}
	if c.FanIn == 0 {
		c.FanIn = 16
	}
	if c.FanIn < 2 {
		return fmt.Errorf("extsort: FanIn must be >= 2, got %d", c.FanIn)
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	return nil
}

// Stats summarizes one external sort.
type Stats struct {
	// Records is the total number of keys sorted.
	Records int
	// Runs is the number of level-0 runs formed.
	Runs int
	// MergePasses counts merge levels (1 when Runs <= FanIn).
	MergePasses int
	// HybridWriteNanos and RunWriteReduction aggregate the run-formation
	// reports: total hybrid write latency and the mean Equation 2 write
	// reduction a precise-only run formation would have forfeited.
	HybridWriteNanos float64
	// RemTildeTotal sums the refine remainders over all runs.
	RemTildeTotal int
}

// SortStream sorts the uint32 stream from r into w. It returns the sort
// statistics. The input need not fit in memory; only Config.RunSize
// records are resident at a time (plus merge buffers).
func SortStream(r io.Reader, w io.Writer, cfg Config) (Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return Stats{}, err
	}
	cfg.Core.SkipBaseline = true
	cfg.Core.MeasureSortedness = false
	if cfg.Core.Algorithm == nil {
		return Stats{}, errors.New("extsort: Config.Core.Algorithm is required")
	}

	dir, err := os.MkdirTemp(cfg.TempDir, "extsort-runs-")
	if err != nil {
		return Stats{}, fmt.Errorf("extsort: creating run directory: %w", err)
	}
	defer os.RemoveAll(dir)

	stats := Stats{}
	runs, err := formRuns(r, dir, &cfg, &stats)
	if err != nil {
		return stats, err
	}
	stats.Runs = len(runs)

	switch len(runs) {
	case 0:
		return stats, nil
	case 1:
		// Single run: stream it out directly.
		stats.MergePasses = 0
		return stats, copyRun(runs[0], w)
	}

	// Multi-pass merge down to FanIn runs, then a final merge into w.
	level := 0
	for len(runs) > cfg.FanIn {
		var next []string
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			out := filepath.Join(dir, fmt.Sprintf("merge-%d-%d.run", level, lo))
			if err := mergeRunsToFile(runs[lo:hi], out); err != nil {
				return stats, err
			}
			next = append(next, out)
		}
		runs = next
		level++
		stats.MergePasses++
	}
	stats.MergePasses++
	return stats, mergeRuns(runs, w)
}

// formRuns reads RunSize-record chunks, sorts each with approx-refine and
// spills them to files, returning the run paths.
func formRuns(r io.Reader, dir string, cfg *Config, stats *Stats) ([]string, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	buf := make([]uint32, 0, cfg.RunSize)
	var runs []string
	var word [4]byte
	seed := cfg.Core.Seed
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		runCfg := cfg.Core
		runCfg.Seed = seed
		seed = seed*0x9e3779b97f4a7c15 + 1
		res, err := core.Run(buf, runCfg)
		if err != nil {
			return err
		}
		if !res.Report.Sorted {
			return errors.New("extsort: run formation produced unsorted output")
		}
		stats.HybridWriteNanos += res.Report.Total().WriteNanos()
		stats.RemTildeTotal += res.Report.RemTilde
		path := filepath.Join(dir, fmt.Sprintf("run-%d.run", len(runs)))
		if err := writeRun(path, res.Keys); err != nil {
			return err
		}
		runs = append(runs, path)
		buf = buf[:0]
		return nil
	}
	for {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				return nil, errors.New("extsort: input truncated mid-record")
			}
			return nil, fmt.Errorf("extsort: reading input: %w", err)
		}
		buf = append(buf, binary.LittleEndian.Uint32(word[:]))
		stats.Records++
		if len(buf) == cfg.RunSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

func writeRun(path string, keys []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("extsort: creating run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var word [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(word[:], k)
		if _, err := bw.Write(word[:]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: writing run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func copyRun(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, bufio.NewReaderSize(f, 1<<16))
	return err
}

// runCursor streams one sorted run.
type runCursor struct {
	r    *bufio.Reader
	f    *os.File
	head uint32
	done bool
}

func openCursor(path string) (*runCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := &runCursor{r: bufio.NewReaderSize(f, 1<<16), f: f}
	if err := c.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func (c *runCursor) advance() error {
	var word [4]byte
	_, err := io.ReadFull(c.r, word[:])
	if err == io.EOF {
		c.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("extsort: reading run: %w", err)
	}
	c.head = binary.LittleEndian.Uint32(word[:])
	return nil
}

// cursorHeap is a min-heap of run cursors by head key.
type cursorHeap []*runCursor

func (h cursorHeap) Len() int            { return len(h) }
func (h cursorHeap) Less(i, j int) bool  { return h[i].head < h[j].head }
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*runCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns k-way-merges the run files into w and removes them.
func mergeRuns(paths []string, w io.Writer) error {
	h := make(cursorHeap, 0, len(paths))
	defer func() {
		for _, c := range h {
			c.f.Close()
		}
	}()
	for _, p := range paths {
		c, err := openCursor(p)
		if err != nil {
			return err
		}
		if c.done {
			c.f.Close()
			continue
		}
		h = append(h, c)
	}
	heap.Init(&h)
	bw := bufio.NewWriterSize(w, 1<<16)
	var word [4]byte
	for h.Len() > 0 {
		c := h[0]
		binary.LittleEndian.PutUint32(word[:], c.head)
		if _, err := bw.Write(word[:]); err != nil {
			return fmt.Errorf("extsort: writing output: %w", err)
		}
		if err := c.advance(); err != nil {
			return err
		}
		if c.done {
			c.f.Close()
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, p := range paths {
		os.Remove(p)
	}
	return nil
}

func mergeRunsToFile(paths []string, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := mergeRuns(paths, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
