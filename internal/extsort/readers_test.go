package extsort

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"testing"

	"approxsort/internal/dataset"
)

func sortedStream(keys []uint32) ([]byte, []uint32) {
	s := append([]uint32(nil), keys...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return encode(s), s
}

func TestMergeReaders(t *testing.T) {
	parts := [][]uint32{
		dataset.Uniform(5000, 3),
		dataset.Uniform(1, 5),
		dataset.Uniform(3000, 7),
		nil, // an empty shard is legal
	}
	readers := make([]io.Reader, len(parts))
	counts := make([]int64, len(parts))
	var all []uint32
	for i, p := range parts {
		raw, s := sortedStream(p)
		readers[i] = bytes.NewReader(raw)
		counts[i] = int64(len(s))
		all = append(all, s...)
	}
	var out bytes.Buffer
	stats, err := MergeReaders(readers, counts, &out, 512)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, all, decode(t, out.Bytes()))
	if stats.Records != int64(len(all)) {
		t.Errorf("Records = %d, want %d", stats.Records, len(all))
	}
	if stats.Writes != stats.Records {
		t.Errorf("Writes = %d, want one precise write per record (%d)", stats.Writes, stats.Records)
	}
	if stats.WriteNanos <= 0 {
		t.Error("merge charged no write latency")
	}
}

func TestMergeReadersCountMismatch(t *testing.T) {
	raw, _ := sortedStream(dataset.Uniform(100, 11))
	var out bytes.Buffer
	_, err := MergeReaders([]io.Reader{bytes.NewReader(raw)}, []int64{99}, &out, 0)
	if err == nil || !strings.Contains(err.Error(), "stream 0") {
		t.Fatalf("short stream not detected: %v", err)
	}
	_, err = MergeReaders([]io.Reader{bytes.NewReader(raw)}, []int64{99, 1}, &out, 0)
	if err == nil {
		t.Fatal("counts/readers length mismatch not detected")
	}
}

func TestMergeReadersUnsortedInput(t *testing.T) {
	keys := []uint32{5, 4, 3}
	var out bytes.Buffer
	_, err := MergeReaders([]io.Reader{bytes.NewReader(encode(keys))}, nil, &out, 0)
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("decreasing stream not detected: %v", err)
	}
}
