package extsort

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
)

// Replacement-selection run formation (SNIPPETS.md §2; Knuth TAOCP vol. 3
// §5.4.1). A tournament tree holds RunSize resident records keyed by
// (run, key): the winner is the smallest key of the earliest open run.
// When a record arrives it evicts the current winner from the selection
// buffer and is itself assigned a run at that moment — the current
// winner's run if its key can still extend it (key ≥ the winner key just
// evicted), the next run otherwise. On uniform-random input the expected
// run length is 2×RunSize (the snowplow argument), which halves the run
// count and usually removes a merge pass relative to chunking.
//
// Unlike the textbook formulation — where the pop order itself emits the
// sorted run — records are staged per run in arrival order and each
// closed run is sorted as one batch on the hybrid memory system. The
// tournament decides only membership. This keeps the per-run sort a
// genuine approx-refine workload (the pop order would already be sorted,
// degenerating the study) while preserving the 2× run length; the
// selection buffer is host bookkeeping, like the dataset generators, and
// the charged simulated work is exactly the per-run sort.
//
// Invariants (DESIGN.md §14):
//   - a record's run is fixed at insertion and never revisited;
//   - run tags are non-decreasing along the pop sequence, and at most
//     two runs (current, next) accept records at any moment, so exactly
//     two arrival-order staging buffers are live;
//   - run r closes when the tree's winner first carries a later run tag,
//     after which no record can be tagged ≤ r.

// formReplacement forms runs by replacement selection, flushing each
// closed run through flushRun, and returns the spilled files in run
// order.
func (st *state) formReplacement(src *recordSource) ([]runFile, error) {
	// Selection keys pack (run, key) into one uint64 so the tournament
	// tree orders by run first, key second.
	slot := make([]uint64, 0, st.runSize)
	var stage [2][]uint32 // arrival-order staging for runs curRun, curRun+1
	for {
		k, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		stage[0] = append(stage[0], k)
		slot = append(slot, uint64(k)) // run 0
		if len(slot) == st.runSize {
			break
		}
	}
	st.stats.Records = src.records
	if len(slot) == 0 {
		return nil, nil
	}

	tree := newTournamentTree(slot)
	curRun := 0
	var files []runFile
	closeThrough := func(run int) error {
		for curRun < run {
			if len(stage[curRun&1]) > 0 {
				fs, err := st.flushRun(stage[curRun&1])
				if err != nil {
					return err
				}
				files = append(files, fs...)
				stage[curRun&1] = stage[curRun&1][:0]
			}
			curRun++
		}
		return nil
	}

	for {
		x, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		st.stats.Records = src.records
		leaf := tree.winner()
		wk := tree.key[leaf]
		run, key := int(wk>>32), uint32(wk)
		// The winner is evicted (its record is already staged); x takes
		// its slot and is assigned a run now: run if it can still extend
		// it, run+1 otherwise.
		if err := closeThrough(run); err != nil {
			return nil, err
		}
		tag := run
		if x < key {
			tag = run + 1
			if tag >= 1<<31 {
				return nil, fmt.Errorf("extsort: run index overflow at record %d", src.records)
			}
		}
		stage[tag&1] = append(stage[tag&1], x)
		tree.update(leaf, uint64(tag)<<32|uint64(x))
	}
	st.stats.Records = src.records

	// End of stream: every resident record is already staged with its
	// final tag (curRun or curRun+1), so no drain loop is needed — close
	// both live runs in order.
	if err := closeThrough(curRun + 2); err != nil {
		return nil, err
	}
	return files, nil
}

// formChunk is load-sort-store formation: read RunSize records, sort,
// spill, repeat. Runs have exactly RunSize records (the final one
// excepted); the original extsort discipline, kept for comparison and
// for inputs where arrival order correlates with key order (replacement
// selection degenerates to one giant run on sorted input, which is
// optimal anyway).
func (st *state) formChunk(src *recordSource) ([]runFile, error) {
	buf := make([]uint32, 0, st.runSize)
	var files []runFile
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		fs, err := st.flushRun(buf)
		if err != nil {
			return err
		}
		files = append(files, fs...)
		buf = buf[:0]
		return nil
	}
	for {
		k, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, k)
		st.stats.Records = src.records
		if len(buf) == st.runSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return files, nil
}

// preciseSortRun sorts one run with keys and IDs both in simulated
// precise memory — the formation mode the planner picks when the backend
// offers no write asymmetry. Accounting mirrors core's baseline: warm-up
// is uncharged, the sort's traffic is the run's formation cost.
func preciseSortRun(keys []uint32, cfg core.Config, seed uint64) ([]uint32, float64, error) {
	n := len(keys)
	space := mem.NewPreciseSpace()
	p := sorts.Pair{Keys: space.Alloc(n), IDs: space.Alloc(n)}
	mem.Load(p.Keys, keys)
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	mem.Load(p.IDs, ids)
	space.ResetStats()
	cfg.Algorithm.Sort(p, sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(seed), Scratch: &sorts.Scratch{}})
	out := mem.PeekAll(p.Keys) //nolint:memescape // result extraction after the accounted run, as in core.Run
	for i := 1; i < n; i++ {
		if out[i-1] > out[i] {
			return nil, 0, fmt.Errorf("extsort: precise run formation produced unsorted output at %d", i)
		}
	}
	return out, space.Stats().WriteNanos, nil
}
