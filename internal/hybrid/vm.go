package hybrid

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
)

// This file emulates the OS and ISA support the paper describes in
// Section 2.3: "method approx_alloc(size) allocates an array on
// approximate memory and returns a pointer. All memory access statements
// to an approximate array are compiled to ld.approx and st.approx. The OS
// kernel is modified to allow approx_alloc to allocate space only on
// approximate DIMMs, and to translate ld/st.approx back to normal ld/st
// with approximate array addresses."
//
// VM provides exactly that: a virtual address space whose page table maps
// each virtual page onto either the precise or the approximate physical
// region of a System, an allocator that places allocations on the
// requested DIMM kind, and Load/Store entry points that translate and
// forward to the memory pipeline.

// Kind selects the DIMM type backing an allocation.
type Kind int

// DIMM kinds.
const (
	Precise Kind = iota
	Approx
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Precise {
		return "precise"
	}
	return "approx"
}

// vmPageBytes is the translation granularity (Table 1: 4 KB pages).
const vmPageBytes = 4096

// VM is a single-address-space process view over a hybrid System.
type VM struct {
	sys     *System
	regions [2]*Region
	physTop [2]uint64 // next free physical offset per region
	// pageTable maps virtual page number → physical frame descriptor.
	pageTable map[uint64]frame
	nextVPage uint64

	loads, stores, faults uint64
}

type frame struct {
	kind Kind
	phys uint64 // region-relative physical page base
}

// NewVM returns a process address space over sys. approxWriteNanos is the
// device write time of the approximate region (the p(t)-scaled latency).
func NewVM(sys *System, approxWriteNanos float64) *VM {
	return &VM{
		sys: sys,
		regions: [2]*Region{
			Precise: sys.Region("precise-dimm", mlc.PreciseWriteNanos),
			Approx:  sys.Region("approx-dimm", approxWriteNanos),
		},
		pageTable: make(map[uint64]frame),
		nextVPage: 1, // keep virtual page 0 unmapped: null-pointer guard
	}
}

// Alloc reserves size bytes on the requested DIMM kind and returns the
// virtual base address — the approx_alloc / malloc pair of Section 2.3.
func (vm *VM) Alloc(size int, kind Kind) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("hybrid: Alloc size %d must be positive", size)
	}
	if kind != Precise && kind != Approx {
		return 0, fmt.Errorf("hybrid: unknown DIMM kind %d", kind)
	}
	pages := (uint64(size) + vmPageBytes - 1) / vmPageBytes
	base := vm.nextVPage * vmPageBytes
	for i := uint64(0); i < pages; i++ {
		vm.pageTable[vm.nextVPage+i] = frame{kind: kind, phys: vm.physTop[kind]}
		vm.physTop[kind] += vmPageBytes
	}
	vm.nextVPage += pages
	return base, nil
}

// Translate resolves a virtual address to its DIMM kind and the physical
// address within that region. Unmapped addresses fault.
func (vm *VM) Translate(vaddr uint64) (Kind, uint64, error) {
	f, ok := vm.pageTable[vaddr/vmPageBytes]
	if !ok {
		vm.faults++
		return 0, 0, fmt.Errorf("hybrid: page fault at %#x", vaddr)
	}
	return f.kind, f.phys + vaddr%vmPageBytes, nil
}

// Load performs a translated read of size bytes — ld / ld.approx
// depending on the backing DIMM.
func (vm *VM) Load(vaddr uint64, size int) error {
	kind, phys, err := vm.Translate(vaddr)
	if err != nil {
		return err
	}
	vm.loads++
	vm.regions[kind].Access(mem.OpRead, phys, size)
	return nil
}

// Store performs a translated write of size bytes — st / st.approx.
func (vm *VM) Store(vaddr uint64, size int) error {
	kind, phys, err := vm.Translate(vaddr)
	if err != nil {
		return err
	}
	vm.stores++
	vm.regions[kind].Access(mem.OpWrite, phys, size)
	return nil
}

// Sink returns a mem.Sink view of the address space so instrumented
// arrays (whose addresses are region-relative) can be bound to a
// virtual allocation: accesses are offset by the allocation base and
// translated. It panics on a fault, because a faulting instrumented array
// indicates a broken harness, not a runtime condition.
func (vm *VM) Sink(base uint64) mem.Sink { return vmSink{vm: vm, base: base} }

type vmSink struct {
	vm   *VM
	base uint64
}

// Access implements mem.Sink.
func (s vmSink) Access(op mem.Op, addr uint64, size int) {
	var err error
	if op == mem.OpRead {
		err = s.vm.Load(s.base+addr, size)
	} else {
		err = s.vm.Store(s.base+addr, size)
	}
	if err != nil {
		panic(err)
	}
}

// VMStats reports the address-space counters.
type VMStats struct {
	Loads, Stores, Faults uint64
	MappedPages           int
}

// Stats returns the counters.
func (vm *VM) Stats() VMStats {
	return VMStats{Loads: vm.loads, Stores: vm.stores, Faults: vm.faults, MappedPages: len(vm.pageTable)}
}
