package hybrid

import (
	"testing"

	"approxsort/internal/mem"
)

func TestVMAllocAndTranslate(t *testing.T) {
	vm := NewVM(New(), 600)
	a, err := vm.Alloc(100, Precise)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vm.Alloc(5000, Approx)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 || b == 0 {
		t.Fatal("allocations returned null addresses")
	}
	if a%vmPageBytes != 0 || b%vmPageBytes != 0 {
		t.Error("allocations not page aligned")
	}
	kind, phys, err := vm.Translate(a + 40)
	if err != nil || kind != Precise || phys != 40 {
		t.Errorf("Translate(a+40) = (%v, %d, %v)", kind, phys, err)
	}
	// b spans two pages; an access into the second page lands at the
	// second approximate frame.
	kind, phys, err = vm.Translate(b + vmPageBytes + 4)
	if err != nil || kind != Approx || phys != vmPageBytes+4 {
		t.Errorf("Translate(b+page+4) = (%v, %d, %v)", kind, phys, err)
	}
	if got := vm.Stats().MappedPages; got != 3 {
		t.Errorf("MappedPages = %d, want 3", got)
	}
}

func TestVMNullAndUnmappedFault(t *testing.T) {
	vm := NewVM(New(), 600)
	if _, _, err := vm.Translate(0); err == nil {
		t.Error("null address did not fault")
	}
	if err := vm.Load(1<<40, 4); err == nil {
		t.Error("unmapped load did not fault")
	}
	if vm.Stats().Faults != 2 {
		t.Errorf("Faults = %d, want 2", vm.Stats().Faults)
	}
}

func TestVMAllocValidation(t *testing.T) {
	vm := NewVM(New(), 600)
	if _, err := vm.Alloc(0, Precise); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := vm.Alloc(8, Kind(9)); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestVMKindsAreIsolated(t *testing.T) {
	// Two same-kind allocations must land on distinct physical frames.
	vm := NewVM(New(), 600)
	a, _ := vm.Alloc(vmPageBytes, Approx)
	b, _ := vm.Alloc(vmPageBytes, Approx)
	_, pa, _ := vm.Translate(a)
	_, pb, _ := vm.Translate(b)
	if pa == pb {
		t.Error("two approx allocations share a physical frame")
	}
	// A precise allocation restarts at the precise region's own space.
	c, _ := vm.Alloc(vmPageBytes, Precise)
	_, pc, _ := vm.Translate(c)
	if pc != 0 {
		t.Errorf("first precise frame at %d, want 0 (regions are separate)", pc)
	}
}

func TestVMAccessesDriveTheSystem(t *testing.T) {
	sys := New()
	vm := NewVM(sys, 600)
	addr, _ := vm.Alloc(64, Precise)
	if err := vm.Store(addr, 4); err != nil {
		t.Fatal(err)
	}
	if err := vm.Load(addr, 4); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Errorf("system saw reads=%d writes=%d", st.Reads, st.Writes)
	}
	if vm.Stats().Loads != 1 || vm.Stats().Stores != 1 {
		t.Errorf("vm counters %+v", vm.Stats())
	}
}

func TestVMSinkBindsInstrumentedArray(t *testing.T) {
	sys := New()
	vm := NewVM(sys, 600)
	base, _ := vm.Alloc(4*100, Approx)

	space := mem.NewApproxSpaceAt(0.055, 1)
	space.SetSink(vm.Sink(base))
	w := space.Alloc(100)
	for i := 0; i < 100; i++ {
		w.Set(i, uint32(i))
	}
	_ = w.Get(7)
	st := vm.Stats()
	if st.Stores != 100 || st.Loads != 1 {
		t.Errorf("vm saw loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.Faults != 0 {
		t.Errorf("faults = %d", st.Faults)
	}
}

func TestVMSinkPanicsOutsideAllocation(t *testing.T) {
	vm := NewVM(New(), 600)
	base, _ := vm.Alloc(8, Precise) // one page
	sink := vm.Sink(base)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-allocation access did not panic")
		}
	}()
	sink.Access(mem.OpRead, vmPageBytes*2, 4) // beyond the mapped page
}

func TestKindString(t *testing.T) {
	if Precise.String() != "precise" || Approx.String() != "approx" {
		t.Errorf("Kind strings: %v %v", Precise, Approx)
	}
}
