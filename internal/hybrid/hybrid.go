// Package hybrid wires the full memory system of the paper's Figure 3
// together: the CPU-side write-through cache hierarchy (internal/cache) in
// front of one PCM device (internal/pcm) whose physical address space is
// split into a precise region and an approximate region — same silicon,
// different guard bands, so they share ranks, banks and queues.
//
// A System is driven as a mem.Sink: attach Region sinks to the
// instrumented spaces (mem.PreciseSpace.SetSink / mem.ApproxSpace.SetSink)
// and every Get/Set flows through caches and bank queues, accumulating the
// CPU-visible "total memory access time" the paper's abstract reports.
// Regions also serve as the analogue of the paper's approx_alloc /
// ld.approx / st.approx interface (Section 2.3): the region an address
// falls in determines how the device treats it.
package hybrid

import (
	"fmt"

	"approxsort/internal/cache"
	"approxsort/internal/mem"
	"approxsort/internal/pcm"
)

// System is the hybrid memory system: caches plus a region-split PCM
// device sharing one CPU clock.
type System struct {
	hier  *cache.Hierarchy
	dev   *pcm.Sim
	clock float64
	next  uint64 // next free region base

	reads, writes   uint64
	readHits        [4]uint64 // by level; [0] counts memory reads
	cacheReadNanos  float64
	memReadNanos    float64
	writeIssueNanos float64
}

// New returns a system with the Table 1 cache hierarchy and PCM device.
func New() *System {
	return &System{hier: cache.NewHierarchy(), dev: pcm.New(pcm.DefaultConfig())}
}

// NewWithConfig returns a system with a custom PCM configuration.
func NewWithConfig(cfg pcm.Config) *System {
	return &System{hier: cache.NewHierarchy(), dev: pcm.New(cfg)}
}

// regionBytes is the size reserved for each region (4 GB of the 8 GB
// device in the default split of Table 1).
const regionBytes = 4 << 30

// Region is a mem.Sink that maps a space's zero-based addresses into the
// system's physical address space and tags its writes with a service time.
type Region struct {
	sys        *System
	base       uint64
	writeNanos float64
	name       string
}

// Region reserves the next address range and returns its sink. writeNanos
// is the per-store device service time for the region — e.g.
// mlc.PreciseWriteNanos for the precise region, or the approximate
// region's p(t)-scaled latency.
func (s *System) Region(name string, writeNanos float64) *Region {
	if writeNanos <= 0 {
		panic(fmt.Sprintf("hybrid: region %q needs positive write latency", name))
	}
	r := &Region{sys: s, base: s.next, writeNanos: writeNanos, name: name}
	s.next += regionBytes
	return r
}

// Name returns the region's label.
func (r *Region) Name() string { return r.name }

// Base returns the region's physical base address.
func (r *Region) Base() uint64 { return r.base }

// Access implements mem.Sink.
func (r *Region) Access(op mem.Op, addr uint64, size int) {
	sys := r.sys
	phys := r.base + addr
	if op == mem.OpRead {
		sys.reads++
		level, nanos := sys.hier.Read(phys)
		sys.readHits[level]++
		sys.cacheReadNanos += nanos
		sys.clock += nanos
		if level == 0 {
			done := sys.dev.Read(phys, sys.clock)
			sys.memReadNanos += done - sys.clock
			sys.clock = done
		}
		return
	}
	sys.writes++
	sys.hier.Write(phys)
	resume := sys.dev.Write(phys, sys.clock, r.writeNanos)
	sys.writeIssueNanos += resume - sys.clock
	sys.clock = resume
}

// Stats summarizes the system-level timing.
type Stats struct {
	// Clock is the CPU-visible elapsed time in nanoseconds: the
	// paper's "total memory access time".
	Clock float64
	// Reads and Writes count accesses entering the hierarchy.
	Reads, Writes uint64
	// L1/L2/L3 hits and memory reads.
	L1Hits, L2Hits, L3Hits, MemReads uint64
	// CacheReadNanos is time spent traversing cache levels.
	CacheReadNanos float64
	// MemReadNanos is time spent blocked on PCM reads.
	MemReadNanos float64
	// WriteStallNanos is time spent blocked on full write queues.
	WriteStallNanos float64
	// Device carries the raw PCM statistics.
	Device pcm.Stats
}

// Check verifies the snapshot's internal consistency — the system-level
// half of the verification subsystem (internal/verify audits the
// space-level accounting; this audits the cache + device pipeline):
// every read resolved at exactly one level, the device never serviced
// more requests than entered the hierarchy, every timing component is
// non-negative, and the CPU clock covers their sum (idle time injected
// via AdvanceClock can only add to it).
func (s Stats) Check() error {
	if got := s.L1Hits + s.L2Hits + s.L3Hits + s.MemReads; got != s.Reads {
		return fmt.Errorf("hybrid: read hits sum to %d, want %d reads", got, s.Reads)
	}
	if s.Device.Reads != s.MemReads {
		return fmt.Errorf("hybrid: device serviced %d reads, hierarchy missed %d",
			s.Device.Reads, s.MemReads)
	}
	if s.Device.Writes != s.Writes {
		return fmt.Errorf("hybrid: device serviced %d writes, hierarchy issued %d",
			s.Device.Writes, s.Writes)
	}
	for name, v := range map[string]float64{
		"Clock": s.Clock, "CacheReadNanos": s.CacheReadNanos,
		"MemReadNanos": s.MemReadNanos, "WriteStallNanos": s.WriteStallNanos,
	} {
		if v < 0 {
			return fmt.Errorf("hybrid: %s = %g is negative", name, v)
		}
	}
	spent := s.CacheReadNanos + s.MemReadNanos + s.WriteStallNanos
	if s.Clock < spent*(1-1e-9) {
		return fmt.Errorf("hybrid: clock %g ns below accounted time %g ns", s.Clock, spent)
	}
	return nil
}

// Stats returns the current totals.
func (s *System) Stats() Stats {
	d := s.dev.Stats()
	return Stats{
		Clock:           s.clock,
		Reads:           s.reads,
		Writes:          s.writes,
		L1Hits:          s.readHits[1],
		L2Hits:          s.readHits[2],
		L3Hits:          s.readHits[3],
		MemReads:        s.readHits[0],
		CacheReadNanos:  s.cacheReadNanos,
		MemReadNanos:    s.memReadNanos,
		WriteStallNanos: s.writeIssueNanos,
		Device:          d,
	}
}

// Clock returns the CPU-visible time in nanoseconds.
func (s *System) Clock() float64 { return s.clock }

// AdvanceClock adds idle time (e.g. CPU compute between memory phases);
// it lets queued writes drain before the next burst.
func (s *System) AdvanceClock(nanos float64) {
	if nanos < 0 {
		panic("hybrid: cannot rewind the clock")
	}
	s.clock += nanos
}
