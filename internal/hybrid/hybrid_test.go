package hybrid

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
	"approxsort/internal/sorts"
)

func TestRegionsAreDisjoint(t *testing.T) {
	sys := New()
	precise := sys.Region("precise", mlc.PreciseWriteNanos)
	approx := sys.Region("approx", 600)
	if precise.Base() == approx.Base() {
		t.Fatal("regions share a base")
	}
	if approx.Name() != "approx" {
		t.Errorf("Name = %q", approx.Name())
	}
}

func TestRegionRejectsBadLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero write latency accepted")
		}
	}()
	New().Region("bad", 0)
}

func TestColdReadGoesToMemory(t *testing.T) {
	sys := New()
	r := sys.Region("precise", 1000)
	r.Access(mem.OpRead, 0, 4)
	st := sys.Stats()
	if st.MemReads != 1 {
		t.Fatalf("MemReads = %d", st.MemReads)
	}
	// Clock: cache traversal (15ns) + PCM read (50ns).
	if st.Clock != 65 {
		t.Errorf("Clock = %v, want 65", st.Clock)
	}
}

func TestWarmReadHitsL1(t *testing.T) {
	sys := New()
	r := sys.Region("precise", 1000)
	r.Access(mem.OpRead, 0, 4)
	before := sys.Clock()
	r.Access(mem.OpRead, 0, 4)
	st := sys.Stats()
	if st.L1Hits != 1 {
		t.Fatalf("L1Hits = %d", st.L1Hits)
	}
	if got := sys.Clock() - before; got != 1 {
		t.Errorf("L1 hit cost %v ns, want 1", got)
	}
}

func TestWritesArePosted(t *testing.T) {
	sys := New()
	r := sys.Region("precise", 1000)
	before := sys.Clock()
	for i := 0; i < 8; i++ {
		r.Access(mem.OpWrite, uint64(i*4), 4)
	}
	if sys.Clock() != before {
		t.Errorf("posted writes advanced the clock by %v", sys.Clock()-before)
	}
	if st := sys.Stats(); st.Writes != 8 {
		t.Errorf("Writes = %d", st.Writes)
	}
}

func TestWriteBurstEventuallyStalls(t *testing.T) {
	sys := New()
	r := sys.Region("precise", 1000)
	// One page → one bank → 32-entry queue; the 33rd write stalls.
	for i := 0; i < 40; i++ {
		r.Access(mem.OpWrite, uint64(i*4), 4)
	}
	st := sys.Stats()
	if st.WriteStallNanos <= 0 {
		t.Error("no stall after overflowing one bank's write queue")
	}
	if st.Device.WriteQueueFullEvents == 0 {
		t.Error("device did not record queue-full events")
	}
}

func TestApproxRegionWritesCheaper(t *testing.T) {
	// Time-to-drain comparison: a burst of approximate writes (~500 ns
	// service) finishes sooner than the same burst of precise writes.
	run := func(writeNanos float64) float64 {
		sys := New()
		r := sys.Region("r", writeNanos)
		for i := 0; i < 100; i++ {
			r.Access(mem.OpWrite, uint64(i*4), 4)
		}
		// A dependent read on the same bank observes the backlog.
		r.Access(mem.OpRead, 0, 4)
		return sys.Clock()
	}
	fast, slow := run(500), run(1000)
	if fast >= slow {
		t.Errorf("approx-region burst (%v ns) not faster than precise (%v ns)", fast, slow)
	}
}

// TestEndToEndSortThroughSystem runs a real sort with both spaces wired
// into one hybrid system and checks the paper's qualitative claim: the
// hybrid (approximate keys) run finishes in less total memory access time
// than the precise-only run.
func TestEndToEndSortThroughSystem(t *testing.T) {
	const n = 20000
	keys := dataset.Uniform(n, 1)

	run := func(approxKeys bool) float64 {
		sys := New()
		preciseSpace := mem.NewPreciseSpace()
		preciseSpace.SetSink(sys.Region("precise", mlc.PreciseWriteNanos))

		var keySpace interface {
			mem.Space
		}
		if approxKeys {
			as := mem.NewApproxSpaceAt(0.055, 2)
			// Approximate region writes cost p(t)·1µs on the device.
			as.SetSink(sys.Region("approx", 0.67*mlc.PreciseWriteNanos))
			keySpace = as
		} else {
			ps := mem.NewPreciseSpace()
			ps.SetSink(sys.Region("precise2", mlc.PreciseWriteNanos))
			keySpace = ps
		}
		p := sorts.Pair{Keys: keySpace.Alloc(n), IDs: preciseSpace.Alloc(n)}
		mem.Load(p.Keys, keys)
		mem.Load(p.IDs, dataset.IDs(n))
		env := sorts.Env{KeySpace: keySpace, IDSpace: preciseSpace, R: rng.New(3)}
		sorts.Quicksort{}.Sort(p, env)
		return sys.Clock()
	}

	hybridTime := run(true)
	preciseTime := run(false)
	if hybridTime >= preciseTime {
		t.Errorf("hybrid access time %v >= precise %v", hybridTime, preciseTime)
	}
}

func TestClockMonotoneUnderRandomStreams(t *testing.T) {
	// Property: no access pattern may ever rewind the CPU clock.
	r := rng.New(99)
	sys := New()
	regions := []*Region{
		sys.Region("precise", mlc.PreciseWriteNanos),
		sys.Region("approx", 500),
	}
	last := sys.Clock()
	for i := 0; i < 20000; i++ {
		reg := regions[r.Intn(2)]
		addr := uint64(r.Intn(1 << 22))
		if r.Bernoulli(0.5) {
			reg.Access(mem.OpRead, addr, 4)
		} else {
			reg.Access(mem.OpWrite, addr, 4)
		}
		if now := sys.Clock(); now < last {
			t.Fatalf("clock went backwards at access %d: %v -> %v", i, last, now)
		} else {
			last = now
		}
	}
	st := sys.Stats()
	if st.Reads+st.Writes != 20000 {
		t.Errorf("access count %d", st.Reads+st.Writes)
	}
}

func TestAdvanceClock(t *testing.T) {
	sys := New()
	sys.AdvanceClock(100)
	if sys.Clock() != 100 {
		t.Errorf("Clock = %v", sys.Clock())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance accepted")
		}
	}()
	sys.AdvanceClock(-1)
}
