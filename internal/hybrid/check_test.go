package hybrid

import (
	"strings"
	"testing"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
)

// TestStatsCheckCleanRun drives a real access stream through the system
// and asserts the snapshot reconciles.
func TestStatsCheckCleanRun(t *testing.T) {
	sys := New()
	region := sys.Region("precise", mlc.PreciseWriteNanos)
	space := mem.NewPreciseSpace()
	space.SetSink(region)
	w := space.Alloc(4096)
	for i := 0; i < w.Len(); i++ {
		w.Set(i, uint32(i*2654435761))
	}
	sum := uint32(0)
	for i := 0; i < w.Len(); i++ {
		sum += w.Get(i)
	}
	_ = sum
	sys.AdvanceClock(1e4)
	if err := sys.Stats().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCheckFiresOnInconsistentSnapshot(t *testing.T) {
	sys := New()
	region := sys.Region("precise", mlc.PreciseWriteNanos)
	region.Access(mem.OpWrite, 0, 4)
	region.Access(mem.OpRead, 0, 4)

	for _, tc := range []struct {
		name   string
		mutate func(*Stats)
		want   string
	}{
		{"hit levels", func(s *Stats) { s.L1Hits += 3 }, "read hits"},
		{"device reads", func(s *Stats) { s.Device.Reads += 1 }, "device serviced"},
		{"device writes", func(s *Stats) { s.Device.Writes += 1 }, "device serviced"},
		{"negative clock", func(s *Stats) { s.Clock = -1 }, "negative"},
		{"clock under accounted", func(s *Stats) { s.Clock = 0; s.CacheReadNanos = 100 }, "below accounted"},
	} {
		st := sys.Stats()
		tc.mutate(&st)
		err := st.Check()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
