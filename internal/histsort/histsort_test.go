package histsort

import (
	"testing"
	"testing/quick"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

func algorithms() []sorts.Algorithm {
	return []sorts.Algorithm{
		HistLSD{Bits: 3}, HistLSD{Bits: 4}, HistLSD{Bits: 6},
		HistMSD{Bits: 3}, HistMSD{Bits: 4}, HistMSD{Bits: 6},
	}
}

func runSort(alg sorts.Algorithm, keys []uint32, withIDs bool) ([]uint32, []uint32) {
	space := mem.NewPreciseSpace()
	env := sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(3)}
	p := sorts.Pair{Keys: space.Alloc(len(keys))}
	mem.Load(p.Keys, keys)
	if withIDs {
		p.IDs = space.Alloc(len(keys))
		mem.Load(p.IDs, dataset.IDs(len(keys)))
	}
	alg.Sort(p, env)
	var ids []uint32
	if withIDs {
		ids = mem.ReadAll(p.IDs)
	}
	return mem.ReadAll(p.Keys), ids
}

func TestHistSortsFixedInputs(t *testing.T) {
	inputs := map[string][]uint32{
		"empty":      {},
		"single":     {9},
		"sorted":     dataset.Sorted(200),
		"reverse":    dataset.Reverse(200),
		"uniform":    dataset.Uniform(777, 1),
		"duplicates": dataset.FewDistinct(500, 4, 2),
		"allsame":    dataset.FewDistinct(300, 1, 3),
		"extremes":   {0xffffffff, 0, 1, 0xfffffffe, 0},
	}
	for _, alg := range algorithms() {
		for name, keys := range inputs {
			got, _ := runSort(alg, keys, false)
			if !sortedness.IsSorted(got) {
				t.Errorf("%s on %s: not sorted", alg.Name(), name)
			}
			if !sortedness.SameMultiset(got, keys) {
				t.Errorf("%s on %s: not a permutation", alg.Name(), name)
			}
		}
	}
}

func TestHistSortsCarryIDs(t *testing.T) {
	keys := dataset.Uniform(600, 5)
	for _, alg := range algorithms() {
		gotKeys, gotIDs := runSort(alg, keys, true)
		if !sortedness.IsSorted(gotKeys) {
			t.Errorf("%s: keys not sorted", alg.Name())
			continue
		}
		seen := make([]bool, len(keys))
		for i, id := range gotIDs {
			if int(id) >= len(keys) || seen[id] || keys[id] != gotKeys[i] {
				t.Errorf("%s: ID integrity violated at %d", alg.Name(), i)
				break
			}
			seen[id] = true
		}
	}
}

func TestHistSortsQuick(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		f := func(keys []uint32) bool {
			if len(keys) > 250 {
				keys = keys[:250]
			}
			got, _ := runSort(alg, keys, false)
			return sortedness.IsSorted(got) && sortedness.SameMultiset(got, keys)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestHistSortIDs(t *testing.T) {
	keys := dataset.Uniform(400, 7)
	for _, alg := range algorithms() {
		space := mem.NewPreciseSpace()
		env := sorts.Env{KeySpace: space, IDSpace: space, R: rng.New(9)}
		ids := space.Alloc(len(keys))
		mem.Load(ids, dataset.IDs(len(keys)))
		alg.SortIDs(ids, len(keys), func(id uint32) uint32 { return keys[id] }, env)
		got := mem.ReadAll(ids)
		prev := uint32(0)
		seen := make([]bool, len(keys))
		for i, id := range got {
			if seen[id] {
				t.Errorf("%s: SortIDs duplicated id", alg.Name())
				break
			}
			seen[id] = true
			if k := keys[id]; i > 0 && k < prev {
				t.Errorf("%s: SortIDs order violated at %d", alg.Name(), i)
				break
			} else {
				prev = k
			}
		}
	}
}

// TestHistogramHalvesWrites is the Appendix B mechanism itself: per pass,
// histogram LSD writes each key once where queue LSD writes twice.
func TestHistogramHalvesWrites(t *testing.T) {
	const n = 8192
	keys := dataset.Uniform(n, 11)
	measure := func(alg sorts.Algorithm) int {
		ks := mem.NewPreciseSpace()
		env := sorts.Env{KeySpace: ks, IDSpace: mem.NewPreciseSpace(), R: rng.New(13)}
		p := sorts.Pair{Keys: ks.Alloc(n)}
		mem.Load(p.Keys, keys)
		alg.Sort(p, env)
		return ks.Stats().Writes - n
	}
	hist := measure(HistLSD{Bits: 6})
	queue := measure(sorts.LSD{Bits: 6})
	if want := 6 * n; hist != want {
		t.Errorf("hist-LSD key writes = %d, want exactly %d (n per pass)", hist, want)
	}
	if queue != 2*hist {
		t.Errorf("queue LSD writes %d, want exactly 2× hist writes %d", queue, hist)
	}

	histM := measure(HistMSD{Bits: 6})
	queueM := measure(sorts.MSD{Bits: 6})
	if histM >= queueM {
		t.Errorf("hist-MSD writes %d not below queue MSD writes %d", histM, queueM)
	}
}

// TestHistApproxRefine is the Appendix B integration: the engine produces
// precise output with the histogram sorts on approximate memory.
func TestHistApproxRefine(t *testing.T) {
	keys := dataset.Uniform(10000, 17)
	for _, alg := range []sorts.Algorithm{HistLSD{Bits: 6}, HistMSD{Bits: 6}} {
		res, err := core.Run(keys, core.Config{Algorithm: alg, T: 0.055, Seed: 19})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !res.Report.Sorted {
			t.Errorf("%s: output not sorted", alg.Name())
		}
		prev := uint32(0)
		for i, k := range res.Keys {
			if i > 0 && k < prev {
				t.Fatalf("%s: unsorted at %d", alg.Name(), i)
			}
			prev = k
		}
	}
}

func TestRadixPassesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("radixPasses(0) did not panic")
		}
	}()
	radixPasses(0)
}

func TestHistSortsOnApproxMemoryTerminate(t *testing.T) {
	for _, alg := range algorithms() {
		approx := mem.NewApproxSpaceAt(0.12, 21)
		precise := mem.NewPreciseSpace()
		env := sorts.Env{KeySpace: approx, IDSpace: precise, R: rng.New(23)}
		p := sorts.Pair{Keys: approx.Alloc(1500), IDs: precise.Alloc(1500)}
		mem.Load(p.Keys, dataset.Uniform(1500, 25))
		mem.Load(p.IDs, dataset.IDs(1500))
		alg.Sort(p, env)
		ids := mem.ReadAll(p.IDs)
		seen := make([]bool, len(ids))
		for _, id := range ids {
			if int(id) >= len(ids) || seen[id] {
				t.Errorf("%s: ID permutation broken on approx memory", alg.Name())
				break
			}
			seen[id] = true
		}
	}
}
