// Package histsort implements the histogram-based radix sorts of the
// paper's Appendix B (after Polychroniou and Ross, SIGMOD'14). Where the
// queue-bucket radix of internal/sorts writes each record twice per pass
// (into a bucket queue, then back), the histogram scheme first counts
// digit occurrences, converts the histogram to scatter offsets, and then
// writes each record exactly once per pass into a ping-pong buffer —
// halving the data writes at the price of one extra read pass.
//
// The original is a SIMD implementation; SIMD lanes change instruction
// throughput, not the memory write pattern, and the paper attributes the
// Appendix B differences to the histogram scheme, so a scalar rendering
// preserves the studied behaviour (see DESIGN.md, substitutions).
//
// Both sorts satisfy sorts.Algorithm, so they plug into the approx-refine
// engine unchanged.
package histsort

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/sorts"
)

// HistLSD is histogram-based least-significant-digit radix sort.
type HistLSD struct {
	// Bits is the digit width. Must be 1..16.
	Bits int
}

// Name implements sorts.Algorithm.
func (h HistLSD) Name() string { return fmt.Sprintf("%d-bit hist-LSD", h.Bits) }

// Sort implements sorts.Algorithm.
func (h HistLSD) Sort(p sorts.Pair, env sorts.Env) {
	n := p.Len()
	passes := radixPasses(h.Bits)
	if n <= 1 {
		return
	}
	srcK, dstK := p.Keys, env.KeySpace.Alloc(n)
	var srcI, dstI mem.Words
	if p.IDs != nil {
		srcI, dstI = p.IDs, env.IDSpace.Alloc(n)
	}
	mask := uint32(1)<<h.Bits - 1
	bins := 1 << h.Bits
	counts := make([]int, bins)
	for pass := 0; pass < passes; pass++ {
		shift := pass * h.Bits
		for b := range counts {
			counts[b] = 0
		}
		// Count pass: one read per record.
		for i := 0; i < n; i++ {
			counts[srcK.Get(i)>>shift&mask]++
		}
		// Exclusive prefix sum → scatter offsets.
		sum := 0
		for b := 0; b < bins; b++ {
			c := counts[b]
			counts[b] = sum
			sum += c
		}
		// Scatter pass: one read and one write per record.
		for i := 0; i < n; i++ {
			k := srcK.Get(i)
			b := k >> shift & mask
			dstK.Set(counts[b], k)
			if srcI != nil {
				dstI.Set(counts[b], srcI.Get(i))
			}
			counts[b]++
		}
		srcK, dstK = dstK, srcK
		srcI, dstI = dstI, srcI
	}
	if srcK != p.Keys {
		// Odd pass count: copy home.
		mem.Copy(p.Keys, srcK)
		if p.IDs != nil {
			mem.Copy(p.IDs, srcI)
		}
	}
}

// SortIDs implements sorts.Algorithm.
func (h HistLSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env sorts.Env) {
	passes := radixPasses(h.Bits)
	if count <= 1 {
		return
	}
	src, dst := ids, env.IDSpace.Alloc(count)
	mask := uint32(1)<<h.Bits - 1
	bins := 1 << h.Bits
	counts := make([]int, bins)
	for pass := 0; pass < passes; pass++ {
		shift := pass * h.Bits
		for b := range counts {
			counts[b] = 0
		}
		for i := 0; i < count; i++ {
			counts[key(src.Get(i))>>shift&mask]++
		}
		sum := 0
		for b := 0; b < bins; b++ {
			c := counts[b]
			counts[b] = sum
			sum += c
		}
		for i := 0; i < count; i++ {
			id := src.Get(i)
			b := key(id) >> shift & mask
			dst.Set(counts[b], id)
			counts[b]++
		}
		src, dst = dst, src
	}
	if src != ids {
		for i := 0; i < count; i++ {
			ids.Set(i, src.Get(i))
		}
	}
}

// HistMSD is histogram-based most-significant-digit radix sort with
// recursive ping-pong scatter and an insertion-sort cutoff for small
// buckets.
type HistMSD struct {
	// Bits is the digit width. Must be 1..16.
	Bits int
}

// Name implements sorts.Algorithm.
func (h HistMSD) Name() string { return fmt.Sprintf("%d-bit hist-MSD", h.Bits) }

// msdCutoff is the bucket size below which recursion falls back to
// insertion sort, matching the queue-bucket MSD's cutoff.
const msdCutoff = 16

// Sort implements sorts.Algorithm.
func (h HistMSD) Sort(p sorts.Pair, env sorts.Env) {
	n := p.Len()
	passes := radixPasses(h.Bits)
	if n <= 1 {
		return
	}
	aux := sorts.Pair{Keys: env.KeySpace.Alloc(n)}
	if p.IDs != nil {
		aux.IDs = env.IDSpace.Alloc(n)
	}
	width := passes * h.Bits
	h.sortRange(p, aux, 0, n, width-h.Bits, false)
}

// sortRange sorts cur[lo:hi), where `flipped` records whether cur is the
// auxiliary buffer (so base cases know to copy the segment home before
// finishing with insertion sort in the caller's arrays).
func (h HistMSD) sortRange(main, aux sorts.Pair, lo, hi, shift int, flipped bool) {
	cur, other := main, aux
	if flipped {
		cur, other = aux, main
	}
	n := hi - lo
	if n <= 1 || shift < 0 || n <= msdCutoff {
		if flipped {
			copySegment(main, aux, lo, hi)
		}
		if n > 1 {
			insertionSegment(main, lo, hi)
		}
		return
	}
	mask := uint32(1)<<h.Bits - 1
	bins := 1 << h.Bits
	counts := make([]int, bins+1)
	for i := lo; i < hi; i++ {
		counts[cur.Keys.Get(i)>>uint(shift)&mask+1]++
	}
	for b := 0; b < bins; b++ {
		counts[b+1] += counts[b]
	}
	offsets := make([]int, bins)
	copy(offsets, counts[:bins])
	for i := lo; i < hi; i++ {
		k := cur.Keys.Get(i)
		b := int(k >> uint(shift) & mask)
		other.Keys.Set(lo+offsets[b], k)
		if cur.IDs != nil {
			other.IDs.Set(lo+offsets[b], cur.IDs.Get(i))
		}
		offsets[b]++
	}
	for b := 0; b < bins; b++ {
		h.sortRange(main, aux, lo+counts[b], lo+counts[b+1], shift-h.Bits, !flipped)
	}
}

// copySegment copies aux[lo:hi) back into main[lo:hi).
func copySegment(main, aux sorts.Pair, lo, hi int) {
	for i := lo; i < hi; i++ {
		main.Keys.Set(i, aux.Keys.Get(i))
		if main.IDs != nil {
			main.IDs.Set(i, aux.IDs.Get(i))
		}
	}
}

// insertionSegment insertion-sorts main[lo:hi) in place.
func insertionSegment(p sorts.Pair, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		k := p.Keys.Get(i)
		var id uint32
		if p.IDs != nil {
			id = p.IDs.Get(i)
		}
		j := i
		for j > lo {
			kj := p.Keys.Get(j - 1)
			if kj <= k {
				break
			}
			p.Keys.Set(j, kj)
			if p.IDs != nil {
				p.IDs.Set(j, p.IDs.Get(j-1))
			}
			j--
		}
		if j != i {
			p.Keys.Set(j, k)
			if p.IDs != nil {
				p.IDs.Set(j, id)
			}
		}
	}
}

// SortIDs implements sorts.Algorithm.
func (h HistMSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env sorts.Env) {
	passes := radixPasses(h.Bits)
	if count <= 1 {
		return
	}
	aux := env.IDSpace.Alloc(count)
	width := passes * h.Bits
	h.sortIDRange(ids, aux, 0, count, width-h.Bits, false, key)
}

func (h HistMSD) sortIDRange(main, aux mem.Words, lo, hi, shift int, flipped bool, key func(uint32) uint32) {
	cur, other := main, aux
	if flipped {
		cur, other = aux, main
	}
	n := hi - lo
	if n <= 1 || shift < 0 || n <= msdCutoff {
		if flipped {
			for i := lo; i < hi; i++ {
				main.Set(i, aux.Get(i))
			}
		}
		if n > 1 {
			insertionIDs(main, lo, hi, key)
		}
		return
	}
	mask := uint32(1)<<h.Bits - 1
	bins := 1 << h.Bits
	counts := make([]int, bins+1)
	for i := lo; i < hi; i++ {
		counts[key(cur.Get(i))>>uint(shift)&mask+1]++
	}
	for b := 0; b < bins; b++ {
		counts[b+1] += counts[b]
	}
	offsets := make([]int, bins)
	copy(offsets, counts[:bins])
	for i := lo; i < hi; i++ {
		id := cur.Get(i)
		b := int(key(id) >> uint(shift) & mask)
		other.Set(lo+offsets[b], id)
		offsets[b]++
	}
	for b := 0; b < bins; b++ {
		h.sortIDRange(main, aux, lo+counts[b], lo+counts[b+1], shift-h.Bits, !flipped, key)
	}
}

func insertionIDs(ids mem.Words, lo, hi int, key func(uint32) uint32) {
	for i := lo + 1; i < hi; i++ {
		id := ids.Get(i)
		k := key(id)
		j := i
		for j > lo {
			idj := ids.Get(j - 1)
			if key(idj) <= k {
				break
			}
			ids.Set(j, idj)
			j--
		}
		if j != i {
			ids.Set(j, id)
		}
	}
}

func radixPasses(bits int) int {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("histsort: digit width %d out of range [1,16]", bits))
	}
	return (32 + bits - 1) / bits
}
