// Package stats provides the small numerical and reporting utilities the
// experiment harnesses share: online moments, fixed-bucket histograms,
// aligned-table and CSV rendering, and a terminal scatter plot for the
// paper's sequence-shape figures (Figures 5–7).
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Running accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Histogram is a fixed-range, equal-width bucket histogram.
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram returns a histogram over [lo, hi) with the given number of
// buckets. It panics on a degenerate range (programming error).
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets < 1 {
		panic(fmt.Sprintf("stats: bad histogram range [%v, %v) x %d", lo, hi, buckets))
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, buckets)}
}

// Add incorporates one observation; values outside the range go to the
// underflow/overflow counters.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i == len(h.buckets) { // x == hi within float error
			i--
		}
		h.buckets[i]++
	}
}

// Counts returns (underflow, per-bucket counts, overflow).
func (h *Histogram) Counts() (int, []int, int) {
	out := make([]int, len(h.buckets))
	copy(out, h.buckets)
	return h.under, out, h.over
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Table renders aligned text tables for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: fixed 4 decimals for moderate
// magnitudes, scientific for tiny non-zero values.
func FormatFloat(v float64) string {
	switch {
	case v == 0: //nolint:floatord // rendering fast path: exact zero prints "0", nothing is compared for correctness
		return "0"
	case math.Abs(v) < 0.0001:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting — harness values are
// plain numbers and identifiers).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ScatterPlot renders ys (indexed by position) as a rows×cols ASCII
// scatter, the terminal analogue of the paper's Figures 5–7 sequence
// shapes: a clean diagonal means sorted, salt-and-pepper noise means
// disorder.
func ScatterPlot(w io.Writer, ys []uint32, rows, cols int) error {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("stats: bad plot size %dx%d", rows, cols))
	}
	grid := make([][]bool, rows)
	for r := range grid {
		grid[r] = make([]bool, cols)
	}
	n := len(ys)
	if n == 0 {
		_, err := fmt.Fprintln(w, "(empty sequence)")
		return err
	}
	for i, y := range ys {
		c := i * cols / n
		r := int(uint64(y) * uint64(rows) / (1 << 32))
		grid[rows-1-r][c] = true
	}
	for r := 0; r < rows; r++ {
		var b strings.Builder
		b.WriteByte('|')
		for c := 0; c < cols; c++ {
			if grid[r][c] {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('|')
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "+%s+ n=%d (x: index, y: key value)\n", strings.Repeat("-", cols), n)
	return err
}
