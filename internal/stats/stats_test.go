package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", r.Var(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 {
		t.Error("empty Running should be all zeros")
	}
	r.Add(3)
	if r.Var() != 0 {
		t.Error("single observation variance should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	under, counts, over := h.Counts()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", under, over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate histogram did not panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 0.5)
	var b strings.Builder
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header malformed: %q", lines[0])
	}
	if !strings.Contains(lines[3], "0.5000") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	col := strings.Index(lines[0], "value")
	if got := strings.Index(lines[2], "1"); got < col {
		t.Errorf("columns not aligned: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(1, 2.5)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2.5000\n" {
		t.Errorf("CSV = %q", b.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5000",
		1e-6:    "1.00e-06",
		-0.25:   "-0.2500",
		12.3456: "12.3456",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestScatterPlotDiagonal(t *testing.T) {
	ys := make([]uint32, 100)
	for i := range ys {
		ys[i] = uint32(uint64(i) << 32 / 100)
	}
	var b strings.Builder
	if err := ScatterPlot(&b, ys, 10, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("plot has %d lines", len(lines))
	}
	// A sorted sequence puts marks on an ascending diagonal: the top row
	// has marks only on the right, the bottom row only on the left.
	top, bottom := lines[0], lines[9]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Errorf("diagonal inverted:\n%s", b.String())
	}
	if strings.Count(top[:10], "*") > 0 {
		t.Errorf("sorted plot has top-left marks:\n%s", b.String())
	}
}

func TestScatterPlotEmpty(t *testing.T) {
	var b strings.Builder
	if err := ScatterPlot(&b, nil, 5, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("empty plot output: %q", b.String())
	}
}
