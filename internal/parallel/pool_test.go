package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		for !p.TrySubmit(func() { ran.Add(1); wg.Done() }) {
			// Queue full: spin until a worker frees a slot. The test
			// intentionally over-submits to exercise both outcomes.
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 tasks", got)
	}
	p.Close()
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})

	// Occupy the only worker, then wait until it has actually dequeued the
	// task so the queue slot is observably free.
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("submit to idle pool failed")
	}
	<-started
	// Fill the single queue slot.
	if !p.TrySubmit(func() { <-block }) {
		t.Fatal("submit to empty queue failed")
	}
	if p.Queued() != 1 {
		t.Fatalf("Queued() = %d, want 1", p.Queued())
	}
	// Worker busy + queue full: the next offer must be rejected.
	if p.TrySubmit(func() {}) {
		t.Fatal("submit succeeded past worker+queue capacity")
	}
	if p.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1", p.Cap())
	}
	close(block)
	p.Close()
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		for !p.TrySubmit(func() { ran.Add(1) }) {
		}
	}
	p.Close() // must wait for all 8
	if got := ran.Load(); got != 8 {
		t.Fatalf("Close returned with %d of 8 tasks done", got)
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit succeeded after Close")
	}
	p.Close() // idempotent
}

func TestPoolConcurrentSubmitAndClose(t *testing.T) {
	// Racing TrySubmit against Close must never panic (send on closed
	// channel) and every accepted task must run before Close returns.
	for iter := 0; iter < 50; iter++ {
		p := NewPool(2, 4)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if p.TrySubmit(func() { ran.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		p.Close()
		wg.Wait()
		// Tasks accepted after Close started cannot exist; all accepted
		// tasks ran by the time Close returned, but the goroutines may
		// accept zero afterwards — only equality matters.
		if ran.Load() != accepted.Load() {
			t.Fatalf("iter %d: accepted %d but ran %d", iter, accepted.Load(), ran.Load())
		}
	}
}
