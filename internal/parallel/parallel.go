// Package parallel provides the deterministic bounded worker pool behind
// every experiment sweep in this repository.
//
// The paper's campaigns are grids of independent points — (algorithm × T)
// or (algorithm × n) — which makes them embarrassingly parallel, but only
// if parallelism cannot change the numbers. The contract here is that
// Map's output is a pure function of (points, fn): result order follows
// point order, the reported error is the one at the lowest point index,
// and nothing depends on the worker count or goroutine scheduling. Callers
// uphold their half of the contract by deriving each point's RNG stream
// from the point's coordinates (see rng.Split), never from a loop index or
// from shared mutable state.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count setting: any n >= 1 is used as-is,
// anything else means one worker per available CPU. It is the default
// behind every study command's -workers flag.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every point with at most Workers(workers) calls in
// flight and returns the results in point order. Grids flatten row-major
// into the points slice; fn receives the point's index and value.
//
// Determinism: results[i] depends only on (i, points[i], fn). If any
// points fail, Map returns the error of the lowest failing index — also
// independent of scheduling: points are claimed in index order, so by the
// time any error surfaces, every lower-indexed point has already been
// claimed and is run to completion. After an error is recorded, idle
// workers stop claiming new points; in-flight points finish. Map never
// leaks goroutines: it returns only after every worker has exited.
func Map[P, R any](points []P, workers int, fn func(i int, p P) (R, error)) ([]R, error) {
	n := len(points)
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i, p := range points {
			r, err := fn(i, p)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	// Each worker buffers its (index, result) pairs in a private shard
	// and the shards merge after the barrier, so workers never store
	// into the shared results slice concurrently — adjacent small
	// results would otherwise false-share cache lines across cores on
	// every store. The merge is order-insensitive: indices are claimed
	// uniquely, so each results slot is written exactly once.
	type indexed struct {
		i int
		r R
	}
	shards := make([][]indexed, workers)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]indexed, 0, n/workers+1)
			defer func() { shards[w] = local }()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i, points[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				local = append(local, indexed{i: i, r: r})
			}
		}(w)
	}
	wg.Wait()
	for _, shard := range shards {
		for _, e := range shard {
			results[e.i] = e.r
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
