package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"approxsort/internal/rng"
)

func TestMapPreservesOrder(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i * 3
	}
	for _, workers := range []int{1, 2, 7, 100, 200} {
		got, err := Map(points, workers, func(i, p int) (int, error) {
			return p + i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*4 {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*4)
			}
		}
	}
}

func TestMapWorkerCountInvariant(t *testing.T) {
	points := make([]float64, 64)
	for i := range points {
		points[i] = float64(i) / 7
	}
	// A compute-heavy pure function: results must not depend on workers.
	run := func(workers int) []float64 {
		out, err := Map(points, workers, func(_ int, p float64) (float64, error) {
			r := rng.New(rng.Split(42, p))
			sum := 0.0
			for k := 0; k < 1000; k++ {
				sum += r.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d produced different results than workers=1", workers)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	fail := map[int]bool{7: true, 12: true, 33: true}
	// Regardless of scheduling, the reported error must always be the one
	// at the lowest failing index: every lower point is claimed first.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(points, 8, func(i, p int) (int, error) {
			if fail[p] {
				return 0, fmt.Errorf("point %d failed", p)
			}
			time.Sleep(time.Microsecond)
			return p, nil
		})
		if err == nil || err.Error() != "point 7 failed" {
			t.Fatalf("trial %d: err = %v, want point 7 failed", trial, err)
		}
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	points := make([]int, 1000)
	for i := range points {
		points[i] = i
	}
	ran := make([]bool, len(points))
	_, err := Map(points, 4, func(i, p int) (int, error) {
		ran[i] = true
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(5 * time.Microsecond)
		return p, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	executed := 0
	for _, r := range ran {
		if r {
			executed++
		}
	}
	if executed == len(points) {
		t.Error("all points ran despite an error at index 0; dispatch should stop early")
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	points := make([]int, 200)
	for i := range points {
		points[i] = i
	}
	for trial := 0; trial < 10; trial++ {
		if _, err := Map(points, 16, func(i, p int) (int, error) {
			if p == 50 {
				return 0, errors.New("injected")
			}
			return p * p, nil
		}); err == nil {
			t.Fatal("expected injected error")
		}
	}
	// Workers exit before Map returns; allow brief scheduler settling.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestMapEmptyInput(t *testing.T) {
	got, err := Map(nil, 8, func(i int, p struct{}) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(5); w != 5 {
		t.Errorf("Workers(5) = %d", w)
	}
}
