package parallel

import "sync"

// Pool is the long-lived counterpart of Map: a fixed set of workers
// draining a bounded task queue. Map serves the batch sweeps — a known
// grid, run to completion, results in point order. Pool serves the sortd
// daemon — an open-ended stream of independent jobs arriving over HTTP,
// where the interesting property is not result order (each job carries its
// own completion signal) but *backpressure*: TrySubmit never blocks and
// never buffers beyond the configured queue depth, so a saturated pool is
// visible to the caller immediately and can be turned into a 429 instead
// of unbounded memory growth.
//
// Determinism still holds per job for the same reason it holds per grid
// point: each task derives its randomness from its own coordinates (see
// rng.Split), never from which worker runs it or when.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts Workers(workers) goroutines draining a queue of the given
// capacity. queue < 0 is treated as 0 (hand-off only: TrySubmit succeeds
// only when a worker is idle and ready to receive).
func NewPool(workers, queue int) *Pool {
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	for w := 0; w < Workers(workers); w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit offers fn to the pool without blocking. It returns false when
// the queue is full or the pool is closed; the caller decides what
// rejection means (sortd answers 429 with Retry-After).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Queued returns the number of submitted tasks no worker has picked up
// yet. It is a point-in-time reading for metrics; by the time the caller
// looks at it, workers may already have drained more.
func (p *Pool) Queued() int { return len(p.tasks) }

// Cap returns the queue capacity.
func (p *Pool) Cap() int { return cap(p.tasks) }

// Close stops admission, lets the workers drain every already-accepted
// task, and returns when the last one has finished. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
