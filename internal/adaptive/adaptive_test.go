package adaptive

import (
	"sort"
	"testing"
	"testing/quick"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
)

func sortIDsVia(keys []uint32, order []uint32) []uint32 {
	space := mem.NewPreciseSpace()
	ids := space.Alloc(len(order))
	mem.Load(ids, order)
	NaturalMergesortIDs(ids, len(order), func(id uint32) uint32 { return keys[id] }, space)
	return mem.ReadAll(ids)
}

func checkSorted(t *testing.T, keys []uint32, got []uint32) {
	t.Helper()
	seen := make([]bool, len(keys))
	prev := uint32(0)
	for i, id := range got {
		if int(id) >= len(keys) || seen[id] {
			t.Fatalf("output not a permutation at %d", i)
		}
		seen[id] = true
		if k := keys[id]; i > 0 && k < prev {
			t.Fatalf("order violated at %d", i)
		} else {
			prev = k
		}
	}
}

func TestNaturalMergesortRandom(t *testing.T) {
	keys := dataset.Uniform(1000, 1)
	got := sortIDsVia(keys, dataset.IDs(1000))
	checkSorted(t, keys, got)
}

func TestNaturalMergesortOddRunCounts(t *testing.T) {
	// Construct inputs with exactly r runs for r in 1..7 to exercise the
	// odd-leftover bookkeeping.
	for r := 1; r <= 7; r++ {
		n := 20 * r
		keys := make([]uint32, n)
		for run := 0; run < r; run++ {
			for i := 0; i < 20; i++ {
				// Later runs start lower so each run boundary is a
				// strict descent.
				keys[run*20+i] = uint32((r-run)*1000 + i)
			}
		}
		got := sortIDsVia(keys, dataset.IDs(n))
		checkSorted(t, keys, got)
	}
}

func TestNaturalMergesortAlreadySortedWritesNothing(t *testing.T) {
	keys := dataset.Sorted(500)
	space := mem.NewPreciseSpace()
	ids := space.Alloc(500)
	mem.Load(ids, dataset.IDs(500))
	space.ResetStats()
	NaturalMergesortIDs(ids, 500, func(id uint32) uint32 { return keys[id] }, space)
	if w := space.Stats().Writes; w != 0 {
		t.Errorf("adaptive sort of sorted input wrote %d words, want 0", w)
	}
}

func TestNaturalMergesortQuick(t *testing.T) {
	f := func(keys []uint32) bool {
		if len(keys) == 0 {
			return true
		}
		if len(keys) > 300 {
			keys = keys[:300]
		}
		got := sortIDsVia(keys, dataset.IDs(len(keys)))
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, id := range got {
			if keys[id] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveRefineCostsAtLeast3n verifies the paper's Section 4.2 claim
// motivating the heuristic: on a nearly sorted (but not sorted) order the
// adaptive refine still pays ≥ 3n writes (≥ n merge traffic + 2n output).
func TestAdaptiveRefineCostsAtLeast3n(t *testing.T) {
	const n = 4096
	keys := dataset.Uniform(n, 3)
	// Build a nearly sorted ID order: sort, then perturb a few entries.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	for s := 0; s < 20; s++ {
		i, j := (s*211)%n, (s*409+7)%n
		order[i], order[j] = order[j], order[i]
	}

	space := mem.NewPreciseSpace()
	key0 := space.Alloc(n)
	mem.Load(key0, keys)
	id := space.Alloc(n)
	for i, o := range order {
		id.Set(i, uint32(o))
	}
	finalKey, finalID := space.Alloc(n), space.Alloc(n)
	space.ResetStats()
	RefineAdaptive(key0, id, space, finalKey, finalID)
	if w := space.Stats().Writes; w < 3*n {
		t.Errorf("adaptive refine wrote %d words, expected >= 3n = %d", w, 3*n)
	}

	// And the output must be precisely sorted.
	out := mem.PeekAll(finalKey)
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("adaptive refine output wrong at %d", i)
		}
	}
}
