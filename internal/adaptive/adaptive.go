// Package adaptive implements a classical adaptive sorting algorithm —
// natural (run-detecting) mergesort — as the baseline the paper's refine
// heuristic is designed to beat (Section 4.2): adaptive sorts exploit
// presortedness to reduce *comparisons*, but they are not write-limited and
// "typically introduce 3n or even more memory writes" on NVRAM, versus the
// refine stage's fewer-than-3n.
//
// RefineAdaptive is a drop-in alternative refine stage: given the
// post-approx-stage ID order, it natural-mergesorts the IDs by their
// precise keys and then materializes finalKey/finalID. The ablation
// benchmark (bench_test.go) compares its write count against the
// heuristic's.
package adaptive

import "approxsort/internal/mem"

// NaturalMergesortIDs sorts ids[0:count] so that key(ids[i]) is
// non-decreasing, by detecting maximal non-decreasing runs and merging
// them pairwise bottom-up with ping-pong buffers allocated from space.
// Nearly sorted inputs yield few runs and thus few merge passes — the
// adaptivity — but every pass still rewrites the full prefix.
func NaturalMergesortIDs(ids mem.Words, count int, key func(uint32) uint32, space mem.Space) {
	if count <= 1 {
		return
	}
	// Detect maximal non-decreasing run boundaries: runs[i] is the start
	// of run i, with a final sentinel at count.
	runs := []int{0}
	prev := key(ids.Get(0))
	for i := 1; i < count; i++ {
		k := key(ids.Get(i))
		if k < prev {
			runs = append(runs, i)
		}
		prev = k
	}
	runs = append(runs, count)
	if len(runs) == 2 {
		return // already sorted
	}

	src, dst := ids, space.Alloc(count)
	for len(runs) > 2 {
		next := []int{0}
		for r := 0; r+2 < len(runs); r += 2 {
			mergeIDRuns(dst, src, runs[r], runs[r+1], runs[r+2], key)
			next = append(next, runs[r+2])
		}
		if (len(runs)-1)%2 == 1 {
			// Odd run out: copy it across so the ping-pong stays
			// consistent.
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			for i := lo; i < hi; i++ {
				dst.Set(i, src.Get(i))
			}
		}
		// next currently holds starts of merged runs; fix the tail
		// sentinel.
		if next[len(next)-1] != count {
			next = append(next, count)
		}
		runs = next
		src, dst = dst, src
	}
	if src != ids {
		for i := 0; i < count; i++ {
			ids.Set(i, src.Get(i))
		}
	}
}

// mergeIDRuns merges src[lo:mid) and src[mid:hi) into dst[lo:hi) by key.
func mergeIDRuns(dst, src mem.Words, lo, mid, hi int, key func(uint32) uint32) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		takeLeft := j >= hi
		if !takeLeft && i < mid {
			takeLeft = key(src.Get(i)) <= key(src.Get(j))
		}
		if takeLeft {
			dst.Set(k, src.Get(i))
			i++
		} else {
			dst.Set(k, src.Get(j))
			j++
		}
	}
}

// RefineAdaptive is the alternative refine stage: sort the full ID order
// adaptively by precise key, then write the final output arrays. It
// returns nothing; accounting lives in the spaces, where the ablation
// reads it. Writes: ≥ n per merge pass (≥ 1 pass whenever the input is
// not already sorted) + 2n for the output — at least 3n in every
// non-trivial case, versus the heuristic refine's 2n + 2·Rem~ + α(Rem~).
func RefineAdaptive(key0, id mem.Words, precise mem.Space, finalKey, finalID mem.Words) {
	n := id.Len()
	NaturalMergesortIDs(id, n, func(rid uint32) uint32 { return key0.Get(int(rid)) }, precise)
	for i := 0; i < n; i++ {
		rid := id.Get(i)
		finalID.Set(i, rid)
		finalKey.Set(i, key0.Get(int(rid)))
	}
}
