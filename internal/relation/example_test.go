package relation_test

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/relation"
	"approxsort/internal/sorts"
)

// ORDER BY on a columnar table: the key column sorts through the
// approx-refine engine and the payload columns follow their rows.
func ExampleTable_OrderBy() {
	table, err := relation.NewTable(
		&relation.Uint32Column{ColName: "price", Values: []uint32{30, 10, 20}},
		&relation.StringColumn{ColName: "item", Values: []string{"cheese", "bread", "milk"}},
	)
	if err != nil {
		panic(err)
	}
	res, err := table.OrderBy("price", core.Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 1})
	if err != nil {
		panic(err)
	}
	prices := res.Table.Column("price").(*relation.Uint32Column).Values
	items := res.Table.Column("item").(*relation.StringColumn).Values
	for i := range prices {
		fmt.Println(prices[i], items[i])
	}
	// Output:
	// 10 bread
	// 20 milk
	// 30 cheese
}

// Sort-based GROUP BY: precise aggregation over the accelerated sort.
func ExampleTable_GroupBySorted() {
	table, err := relation.NewTable(
		&relation.Uint32Column{ColName: "dept", Values: []uint32{2, 1, 2, 1, 1}},
		&relation.Int64Column{ColName: "salary", Values: []int64{10, 20, 30, 40, 60}},
	)
	if err != nil {
		panic(err)
	}
	groups, _, err := table.GroupBySorted("dept", "salary", core.Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, g := range groups {
		fmt.Printf("dept %d: count=%d sum=%d\n", g.Key, g.Count, g.Sum)
	}
	// Output:
	// dept 1: count=3 sum=120
	// dept 2: count=2 sum=40
}
