// Package relation provides the thin columnar-table layer that connects
// the approx-refine sorting engine to the database workloads the paper's
// introduction motivates: ORDER BY over a table whose sort key is a
// 32-bit column and whose remaining columns ride along through the record
// IDs (Section 4.1's <Key, ID> layout generalized to whole rows).
//
// The sorted output is bit-exact: the engine's precision guarantee makes
// the layer safe for operators with exactness requirements (merge joins,
// grouping, top-k with ties).
package relation

import (
	"fmt"

	"approxsort/internal/core"
	"approxsort/internal/sorts"
)

// Column is a named, typed column. Implementations hold n values and can
// gather themselves through a row permutation.
type Column interface {
	// Name returns the column name.
	Name() string
	// Len returns the row count.
	Len() int
	// gather returns a new column whose row i is the receiver's row
	// perm[i].
	gather(perm []uint32) Column
}

// Uint32Column is a 32-bit integer column — the only type that can serve
// as a sort key (the paper's key domain).
type Uint32Column struct {
	ColName string
	Values  []uint32
}

// Name implements Column.
func (c *Uint32Column) Name() string { return c.ColName }

// Len implements Column.
func (c *Uint32Column) Len() int { return len(c.Values) }

func (c *Uint32Column) gather(perm []uint32) Column {
	out := make([]uint32, len(perm))
	for i, p := range perm {
		out[i] = c.Values[p]
	}
	return &Uint32Column{ColName: c.ColName, Values: out}
}

// StringColumn is a payload column of strings.
type StringColumn struct {
	ColName string
	Values  []string
}

// Name implements Column.
func (c *StringColumn) Name() string { return c.ColName }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.Values) }

func (c *StringColumn) gather(perm []uint32) Column {
	out := make([]string, len(perm))
	for i, p := range perm {
		out[i] = c.Values[p]
	}
	return &StringColumn{ColName: c.ColName, Values: out}
}

// Int64Column is a payload column of 64-bit integers.
type Int64Column struct {
	ColName string
	Values  []int64
}

// Name implements Column.
func (c *Int64Column) Name() string { return c.ColName }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Values) }

func (c *Int64Column) gather(perm []uint32) Column {
	out := make([]int64, len(perm))
	for i, p := range perm {
		out[i] = c.Values[p]
	}
	return &Int64Column{ColName: c.ColName, Values: out}
}

// Table is a named bag of equal-length columns.
type Table struct {
	cols  []Column
	byIdx map[string]int
}

// NewTable builds a table from columns. All columns must have distinct
// names and equal lengths.
func NewTable(cols ...Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: a table needs at least one column")
	}
	t := &Table{cols: cols, byIdx: make(map[string]int, len(cols))}
	n := cols[0].Len()
	for i, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("relation: column %q has %d rows, want %d", c.Name(), c.Len(), n)
		}
		if _, dup := t.byIdx[c.Name()]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name())
		}
		t.byIdx[c.Name()] = i
	}
	return t, nil
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.cols[0].Len() }

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) Column {
	i, ok := t.byIdx[name]
	if !ok {
		return nil
	}
	return t.cols[i]
}

// Columns returns the column list in declaration order.
func (t *Table) Columns() []Column { return t.cols }

// OrderByResult carries the sorted table plus the engine's accounting.
type OrderByResult struct {
	Table  *Table
	Report *core.Report
}

// OrderBy returns a new table sorted ascending by the named uint32 key
// column, sorted through the approx-refine engine configured by cfg
// (cfg.Algorithm defaults to 3-bit MSD, cfg.T to 0.055). Every payload
// column is gathered through the resulting record-ID permutation.
func (t *Table) OrderBy(keyColumn string, cfg core.Config) (OrderByResult, error) {
	col := t.Column(keyColumn)
	if col == nil {
		return OrderByResult{}, fmt.Errorf("relation: no column %q", keyColumn)
	}
	keyCol, ok := col.(*Uint32Column)
	if !ok {
		return OrderByResult{}, fmt.Errorf("relation: column %q is not a uint32 sort key", keyColumn)
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = sorts.MSD{Bits: 3}
	}
	if cfg.T == 0 && cfg.NewSpace == nil {
		cfg.T = 0.055
	}
	res, err := core.Run(keyCol.Values, cfg)
	if err != nil {
		return OrderByResult{}, err
	}
	out := make([]Column, len(t.cols))
	for i, c := range t.cols {
		if c == col {
			// The engine already produced the sorted key column.
			out[i] = &Uint32Column{ColName: c.Name(), Values: res.Keys}
			continue
		}
		out[i] = c.gather(res.IDs)
	}
	sorted, err := NewTable(out...)
	if err != nil {
		return OrderByResult{}, err
	}
	return OrderByResult{Table: sorted, Report: res.Report}, nil
}

// GroupAgg is one aggregation result row of GroupBySorted.
type GroupAgg struct {
	Key   uint32
	Count int
	Sum   int64 // sum of the aggregated Int64Column, 0 when none given
}

// GroupBySorted performs sort-based grouping: ORDER BY the key column via
// approx-refine, then a single precise pass producing per-key counts (and
// the sum of aggColumn when non-empty). This is the paper's future-work
// pointer ("other database operations (such as aggregations)") realized
// the conservative way: the approximate hardware accelerates the sort,
// the aggregation itself stays precise.
func (t *Table) GroupBySorted(keyColumn, aggColumn string, cfg core.Config) ([]GroupAgg, *core.Report, error) {
	res, err := t.OrderBy(keyColumn, cfg)
	if err != nil {
		return nil, nil, err
	}
	keys := res.Table.Column(keyColumn).(*Uint32Column).Values
	var agg *Int64Column
	if aggColumn != "" {
		c := res.Table.Column(aggColumn)
		if c == nil {
			return nil, nil, fmt.Errorf("relation: no column %q", aggColumn)
		}
		var ok bool
		if agg, ok = c.(*Int64Column); !ok {
			return nil, nil, fmt.Errorf("relation: column %q is not aggregatable (int64)", aggColumn)
		}
	}
	var out []GroupAgg
	for i := 0; i < len(keys); {
		j := i
		var sum int64
		for j < len(keys) && keys[j] == keys[i] {
			if agg != nil {
				sum += agg.Values[j]
			}
			j++
		}
		out = append(out, GroupAgg{Key: keys[i], Count: j - i, Sum: sum})
		i = j
	}
	return out, res.Report, nil
}
