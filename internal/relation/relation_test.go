package relation

import (
	"sort"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
)

func sampleTable(t *testing.T, n int, seed uint64) *Table {
	t.Helper()
	keys := dataset.Zipf(n, n/4+1, 1.1, seed)
	names := make([]string, n)
	vals := make([]int64, n)
	for i := range names {
		names[i] = "row-" + string(rune('a'+i%26))
		vals[i] = int64(i) * 3
	}
	tab, err := NewTable(
		&Uint32Column{ColName: "key", Values: keys},
		&StringColumn{ColName: "name", Values: names},
		&Int64Column{ColName: "val", Values: vals},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTable(
		&Uint32Column{ColName: "a", Values: []uint32{1}},
		&StringColumn{ColName: "b", Values: []string{"x", "y"}},
	); err == nil {
		t.Error("ragged columns accepted")
	}
	if _, err := NewTable(
		&Uint32Column{ColName: "a", Values: []uint32{1}},
		&Int64Column{ColName: "a", Values: []int64{2}},
	); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestOrderByKeepsRowsTogether(t *testing.T) {
	tab := sampleTable(t, 5000, 1)
	origKeys := tab.Column("key").(*Uint32Column).Values
	origNames := tab.Column("name").(*StringColumn).Values
	origVals := tab.Column("val").(*Int64Column).Values

	// Remember each row's identity via its unique val.
	rowByVal := make(map[int64]int, len(origVals))
	for i, v := range origVals {
		rowByVal[v] = i
	}

	res, err := tab.OrderBy("key", core.Config{Algorithm: sorts.LSD{Bits: 6}, T: 0.08, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := res.Table.Column("key").(*Uint32Column).Values
	names := res.Table.Column("name").(*StringColumn).Values
	vals := res.Table.Column("val").(*Int64Column).Values

	want := append([]uint32(nil), origKeys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("keys not exactly sorted at %d", i)
		}
		src, ok := rowByVal[vals[i]]
		if !ok {
			t.Fatalf("row identity lost at %d", i)
		}
		if origKeys[src] != keys[i] || origNames[src] != names[i] {
			t.Fatalf("row %d torn apart: key/name mismatch", i)
		}
	}
	if !res.Report.Sorted {
		t.Error("report claims unsorted")
	}
	// The original table is untouched.
	if &tab.Column("key").(*Uint32Column).Values[0] == &keys[0] {
		t.Error("OrderBy aliased the input column")
	}
}

func TestOrderByErrors(t *testing.T) {
	tab := sampleTable(t, 100, 3)
	if _, err := tab.OrderBy("nope", core.Config{}); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := tab.OrderBy("name", core.Config{}); err == nil {
		t.Error("non-uint32 key accepted")
	}
}

func TestOrderByDefaults(t *testing.T) {
	tab := sampleTable(t, 2000, 4)
	res, err := tab.OrderBy("key", core.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Algorithm != "3-bit MSD" {
		t.Errorf("default algorithm = %q", res.Report.Algorithm)
	}
	if res.Report.T != 0.055 {
		t.Errorf("default T = %v", res.Report.T)
	}
}

func TestGroupBySorted(t *testing.T) {
	keys := []uint32{5, 3, 5, 3, 3, 9}
	vals := []int64{1, 10, 2, 20, 30, 100}
	tab, err := NewTable(
		&Uint32Column{ColName: "k", Values: keys},
		&Int64Column{ColName: "v", Values: vals},
	)
	if err != nil {
		t.Fatal(err)
	}
	groups, report, err := tab.GroupBySorted("k", "v", core.Config{Seed: 6, T: 0.1, Algorithm: sorts.Quicksort{}})
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || !report.Sorted {
		t.Fatal("missing/unsorted report")
	}
	want := []GroupAgg{{3, 3, 60}, {5, 2, 3}, {9, 1, 100}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %+v", groups)
	}
	for i, g := range want {
		if groups[i] != g {
			t.Errorf("group %d = %+v, want %+v", i, groups[i], g)
		}
	}
}

func TestGroupBySortedCountOnly(t *testing.T) {
	tab := sampleTable(t, 3000, 7)
	groups, _, err := tab.GroupBySorted("key", "", core.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	prev := uint32(0)
	for i, g := range groups {
		if i > 0 && g.Key <= prev {
			t.Fatal("group keys not strictly increasing")
		}
		prev = g.Key
		total += g.Count
		if g.Sum != 0 {
			t.Error("count-only grouping produced sums")
		}
	}
	if total != 3000 {
		t.Errorf("group counts sum to %d, want 3000", total)
	}
}

func TestGroupBySortedErrors(t *testing.T) {
	tab := sampleTable(t, 50, 9)
	if _, _, err := tab.GroupBySorted("key", "nope", core.Config{Seed: 1}); err == nil {
		t.Error("missing agg column accepted")
	}
	if _, _, err := tab.GroupBySorted("key", "name", core.Config{Seed: 1}); err == nil {
		t.Error("string agg column accepted")
	}
}
