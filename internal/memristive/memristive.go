// Package memristive implements an approximate memristive (ReRAM) memory
// model: approximate writes use a reduced programming current, trading
// write energy for a per-cell switching-failure probability. A cell whose
// write fails to switch RETAINS its previous stored value — corruption is
// data-dependent (rewriting a cell with the value it already holds can
// never corrupt it), unlike the spintronic model's independent XOR flips
// or the MLC model's target-range analog drift. Reads are precise and
// faster than the PCM array read: ReRAM's resistive sensing is commonly
// reported at roughly half the PCM read latency, which gives this backend
// a genuinely different read cost structure the verifier pins per-read.
//
// Space satisfies the same allocation/accounting contract as the MLC PCM
// and spintronic spaces, so the approx-refine engine (internal/core) runs
// on it unchanged — a third demonstration that the mechanism is not tied
// to one approximate-memory technology.
package memristive

import (
	"fmt"
	"math"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
	"approxsort/internal/rng"
)

// ReadNanos is the latency of one ReRAM data read: half the PCM array
// read (mlc.ReadNanos), the usual relative placement in the NVM timing
// literature.
const ReadNanos = mlc.ReadNanos / 2

// Config is one operating point of the approximate memristive memory.
type Config struct {
	// CurrentScale is the programming current relative to the precise
	// write, in (0, 1]: each approximate write costs CurrentScale energy
	// units (a precise write costs 1).
	CurrentScale float64
	// SwitchFailProb is the independent per-cell probability that a
	// reduced-current write fails to switch, leaving the cell at its
	// previous value.
	SwitchFailProb float64
}

// Validate reports whether the operating point is meaningful.
func (c Config) Validate() error {
	if c.CurrentScale <= 0 || c.CurrentScale > 1 {
		return fmt.Errorf("memristive: CurrentScale = %v out of (0, 1]", c.CurrentScale)
	}
	if c.SwitchFailProb < 0 || c.SwitchFailProb > 0.5 {
		return fmt.Errorf("memristive: SwitchFailProb = %v out of [0, 0.5]", c.SwitchFailProb)
	}
	return nil
}

// Presets returns three operating points in increasing aggressiveness:
// mild, the registry default, and deep current reduction.
func Presets() []Config {
	return []Config{
		{CurrentScale: 0.9, SwitchFailProb: 1e-6},
		{CurrentScale: 0.7, SwitchFailProb: 1e-5},
		{CurrentScale: 0.5, SwitchFailProb: 1e-4},
	}
}

// Space is an approximate memristive memory region compatible with
// mem.Space. Accounting follows the same batched Raw/Fold scheme as the
// PCM and spintronic spaces: the hot path mutates integer counters on the
// owning array; Stats folds the array registry on demand.
type Space struct {
	cfg   Config
	r     *rng.Source
	fold  mem.Fold
	sink  mem.Sink
	addrs mem.AddressAllocator
	words []*words
	base  mem.Raw

	// logOneMinusFail caches ln(1−SwitchFailProb) for geometric skipping
	// over the 32 cells of a word write.
	logOneMinusFail float64
}

// NewSpace returns a memristive space at operating point cfg. It panics on
// an invalid configuration (programming error).
func NewSpace(cfg Config, seed uint64) *Space {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Space{
		cfg: cfg,
		r:   rng.New(seed),
		fold: mem.Fold{
			ReadNanos:      ReadNanos,
			WriteNanos:     mlc.PreciseWriteNanos,
			EnergyPerWrite: cfg.CurrentScale,
		},
		logOneMinusFail: math.Log1p(-cfg.SwitchFailProb),
	}
}

// Config returns the space's operating point.
func (s *Space) Config() Config { return s.cfg }

// SetSink attaches a trace sink, retroactively rebinding arrays
// allocated before the attach.
func (s *Space) SetSink(sink mem.Sink) {
	s.sink = sink
	for _, w := range s.words {
		w.sink = sink
	}
}

// Alloc implements mem.Space.
func (s *Space) Alloc(n int) mem.Words {
	w := &words{space: s, sink: s.sink, base: s.addrs.Take(n), data: make([]uint32, n)}
	s.words = append(s.words, w)
	return w
}

func (s *Space) rawTotal() mem.Raw {
	var total mem.Raw
	for _, w := range s.words {
		total.Add(w.raw)
	}
	return total
}

// Stats implements mem.Space.
func (s *Space) Stats() mem.Stats { return s.fold.Stats(s.rawTotal().Sub(s.base)) }

// ResetStats zeroes the aggregate by snapshotting the current raw totals
// as the new baseline; arrays allocated before the reset fold into the
// post-reset aggregate exactly once.
func (s *Space) ResetStats() { s.base = s.rawTotal() }

// Approximate implements mem.Space.
func (s *Space) Approximate() bool { return true }

// failMask draws the set of cells whose switch fails on one word write:
// each of the 32 bit positions fails independently with SwitchFailProb,
// sampled by geometric skipping so the common failure-free case costs a
// single uniform draw.
func (s *Space) failMask() uint32 {
	if s.cfg.SwitchFailProb == 0 { //nolint:floatord // exact-zero fast path on a configured probability, not an accumulated sum
		return 0
	}
	var mask uint32
	bit := 0
	for {
		// Distance to the next failed cell: geometric with success
		// probability SwitchFailProb. 1−Float64() lies in (0, 1], keeping
		// the logarithm finite.
		u := 1 - s.r.Float64()
		skip := int(math.Log(u) / s.logOneMinusFail)
		bit += skip
		if bit >= 32 {
			return mask
		}
		mask |= 1 << uint(bit)
		bit++
	}
}

type words struct {
	space *Space
	sink  mem.Sink
	base  uint64
	data  []uint32
	raw   mem.Raw
}

func (w *words) Len() int { return len(w.data) }

//memlint:hotpath
func (w *words) Get(i int) uint32 {
	w.raw.Reads++
	if w.sink != nil {
		w.sink.Access(mem.OpRead, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	// Reads are precise: switching failures corrupt the stored value at
	// write time, and sensing returns it faithfully.
	return w.data[i]
}

//memlint:hotpath
func (w *words) Set(i int, v uint32) {
	// Cells whose switch fails retain the previous stored value; a write
	// corrupts only where the new and old values actually differ.
	stored := v
	if mask := w.space.failMask(); mask != 0 {
		stored = (v &^ mask) | (w.data[i] & mask)
	}
	w.raw.Writes++
	if stored != v {
		w.raw.Corrupted++
	}
	if w.sink != nil {
		w.sink.Access(mem.OpWrite, w.base+uint64(i)*4, 4) //nolint:hotpath // traced arrays opt back into per-access sink dispatch
	}
	w.data[i] = stored
}

// GetSlice implements mem.BulkWords: reads are precise, so the bulk read
// is a counter bump plus a copy.
func (w *words) GetSlice(i int, dst []uint32) {
	if w.sink != nil {
		for j := range dst {
			dst[j] = w.Get(i + j)
		}
		return
	}
	w.raw.Reads += len(dst)
	copy(dst, w.data[i:i+len(dst)])
}

// SetSlice implements mem.BulkWords: writes run through the
// switch-failure model in index order, consuming the noise stream exactly
// as per-element Sets would.
func (w *words) SetSlice(i int, src []uint32) {
	if w.sink != nil {
		for j, v := range src {
			w.Set(i+j, v)
		}
		return
	}
	s := w.space
	corrupted := 0
	for j, v := range src {
		stored := v
		if mask := s.failMask(); mask != 0 {
			stored = (v &^ mask) | (w.data[i+j] & mask)
		}
		if stored != v {
			corrupted++
		}
		w.data[i+j] = stored
	}
	w.raw.Writes += len(src)
	w.raw.Corrupted += corrupted
}

// Reorderable implements mem.BulkWords: untraced memristive arrays
// commute under read/write decoupling because reads are precise and never
// touch the noise stream; writes stay in index order on both paths.
func (w *words) Reorderable() bool { return w.sink == nil }

// Stats returns the accesses charged to this array, folded under the
// space's cost recipe.
func (w *words) Stats() mem.Stats { return w.space.fold.Stats(w.raw) }

// Peek implements mem.Peeker.
func (w *words) Peek(i int) uint32 { return w.data[i] }
