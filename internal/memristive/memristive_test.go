package memristive

import (
	"testing"

	"approxsort/internal/mem"
	"approxsort/internal/mlc"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{CurrentScale: 0.7, SwitchFailProb: 1e-5}, true},
		{Config{CurrentScale: 1, SwitchFailProb: 0}, true},
		{Config{CurrentScale: 0.5, SwitchFailProb: 0.5}, true},
		{Config{CurrentScale: 0, SwitchFailProb: 0}, false},
		{Config{CurrentScale: -0.1, SwitchFailProb: 0}, false},
		{Config{CurrentScale: 1.1, SwitchFailProb: 0}, false},
		{Config{CurrentScale: 0.7, SwitchFailProb: -1e-9}, false},
		{Config{CurrentScale: 0.7, SwitchFailProb: 0.6}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("Presets() returned %d points, want 3", len(ps))
	}
	for _, cfg := range ps {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %+v invalid: %v", cfg, err)
		}
	}
}

func TestNewSpacePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpace with CurrentScale 0 did not panic")
		}
	}()
	NewSpace(Config{CurrentScale: 0}, 1)
}

// TestReadsArePrecise pins the model's defining asymmetry: corruption
// happens at write time only, so reads return the stored value
// faithfully no matter how aggressive the operating point is.
func TestReadsArePrecise(t *testing.T) {
	s := NewSpace(Config{CurrentScale: 0.5, SwitchFailProb: 0.5}, 7)
	w := s.Alloc(64)
	for i := 0; i < 64; i++ {
		w.Set(i, uint32(i)*0x9e3779b9)
	}
	for i := 0; i < 64; i++ {
		if got, peek := w.Get(i), peek(w, i); got != peek {
			t.Fatalf("Get(%d) = %#x, Peek = %#x: read corrupted a stored value", i, got, peek)
		}
	}
}

// TestSwitchFailureRetainsPreviousValue pins the failure semantics: a
// failed cell keeps its PREVIOUS value, so every corrupted bit of the
// stored word must come from the word it is overwriting.
func TestSwitchFailureRetainsPreviousValue(t *testing.T) {
	s := NewSpace(Config{CurrentScale: 0.7, SwitchFailProb: 0.3}, 42)
	w := s.Alloc(256)
	for i := 0; i < 256; i++ {
		w.Set(i, 0xAAAAAAAA)
	}
	s.ResetStats()
	corruptions := 0
	const next = uint32(0x55555555)
	for i := 0; i < 256; i++ {
		prev := peek(w, i)
		w.Set(i, next)
		got := peek(w, i)
		// Every stored bit comes from the new value or the previous one.
		if (got^next)&(got^prev) != 0 {
			t.Fatalf("Set stored %#x: bits outside new %#x / previous %#x", got, next, prev)
		}
		if got != next {
			corruptions++
		}
	}
	if corruptions == 0 {
		t.Fatal("SwitchFailProb 0.3 over 256 full-complement writes corrupted nothing")
	}
	if st := s.Stats(); st.Corrupted != corruptions {
		t.Fatalf("Corrupted = %d, want %d observed corrupted stores", st.Corrupted, corruptions)
	}
}

// TestRewritingSameValueNeverCorrupts: corruption is data-dependent —
// a failed switch on a cell that already holds the target bit is
// invisible, so writing a word over itself can never corrupt.
func TestRewritingSameValueNeverCorrupts(t *testing.T) {
	s := NewSpace(Config{CurrentScale: 0.5, SwitchFailProb: 0.5}, 3)
	w := s.Alloc(128)
	for i := 0; i < 128; i++ {
		w.Set(i, 0xDEADBEEF)
	}
	s.ResetStats()
	for round := 0; round < 4; round++ {
		for i := 0; i < 128; i++ {
			w.Set(i, peek(w, i))
		}
	}
	st := s.Stats()
	if st.Corrupted != 0 {
		t.Fatalf("rewriting stored values corrupted %d writes; retention failures must be value-invisible", st.Corrupted)
	}
	if st.Writes != 4*128 {
		t.Fatalf("Writes = %d, want %d", st.Writes, 4*128)
	}
}

// TestAccountingIdentities pins the fold recipe the verifier holds
// memristive runs to: precise-latency writes, half-PCM-latency reads,
// CurrentScale energy per write.
func TestAccountingIdentities(t *testing.T) {
	cfg := Config{CurrentScale: 0.7, SwitchFailProb: 1e-5}
	s := NewSpace(cfg, 11)
	w := s.Alloc(100)
	for i := 0; i < 100; i++ {
		w.Set(i, uint32(i))
	}
	for i := 0; i < 100; i++ {
		w.Get(i)
	}
	st := s.Stats()
	if st.Reads != 100 || st.Writes != 100 {
		t.Fatalf("Stats = %d reads / %d writes, want 100/100", st.Reads, st.Writes)
	}
	if want := float64(st.Reads) * ReadNanos; st.ReadNanos != want {
		t.Errorf("ReadNanos = %g, want reads × %g = %g", st.ReadNanos, ReadNanos, want)
	}
	if want := float64(st.Writes) * mlc.PreciseWriteNanos; st.WriteNanos != want {
		t.Errorf("WriteNanos = %g, want writes × precise latency = %g", st.WriteNanos, want)
	}
	if want := float64(st.Writes) * cfg.CurrentScale; st.WriteEnergy != want {
		t.Errorf("WriteEnergy = %g, want writes × CurrentScale = %g", st.WriteEnergy, want)
	}
	if ReadNanos != mlc.ReadNanos/2 {
		t.Errorf("ReadNanos = %g, want half the PCM array read %g", ReadNanos, mlc.ReadNanos)
	}
}

// TestBulkMatchesPerElement pins the bulk contract: SetSlice consumes
// the noise stream exactly as per-element Sets would, so two spaces at
// the same seed store identical values and charge identical counters.
func TestBulkMatchesPerElement(t *testing.T) {
	cfg := Config{CurrentScale: 0.7, SwitchFailProb: 0.05}
	const n = 500
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i) * 0x85ebca6b
	}

	bulk := NewSpace(cfg, 99)
	wb := bulk.Alloc(n)
	wb.(mem.BulkWords).SetSlice(0, src)

	elem := NewSpace(cfg, 99)
	we := elem.Alloc(n)
	for i, v := range src {
		we.Set(i, v)
	}

	for i := 0; i < n; i++ {
		if a, b := peek(wb, i), peek(we, i); a != b {
			t.Fatalf("stored[%d]: bulk %#x != per-element %#x", i, a, b)
		}
	}
	if sb, se := bulk.Stats(), elem.Stats(); sb != se {
		t.Fatalf("stats diverge: bulk %+v, per-element %+v", sb, se)
	}

	dst := make([]uint32, n)
	wb.(mem.BulkWords).GetSlice(0, dst)
	for i, v := range dst {
		if v != peek(wb, i) {
			t.Fatalf("GetSlice[%d] = %#x, want stored %#x", i, v, peek(wb, i))
		}
	}
	if got := bulk.Stats().Reads; got != n {
		t.Fatalf("GetSlice charged %d reads, want %d", got, n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{CurrentScale: 0.5, SwitchFailProb: 0.1}
	run := func() ([]uint32, mem.Stats) {
		s := NewSpace(cfg, 1234)
		w := s.Alloc(300)
		for i := 0; i < 300; i++ {
			w.Set(i, uint32(i)*2654435761)
		}
		return mem.PeekAll(w), s.Stats()
	}
	v1, s1 := run()
	v2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverge across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("stored[%d] diverges across identical runs", i)
		}
	}
}

// TestTracedPathsAndReorderable: attaching a sink retroactively rebinds
// arrays, routes bulk calls through the per-element traced path, and
// withdraws the reordering capability.
func TestTracedPathsAndReorderable(t *testing.T) {
	s := NewSpace(Config{CurrentScale: 0.9, SwitchFailProb: 0}, 5)
	w := s.Alloc(8)
	if !w.(mem.BulkWords).Reorderable() {
		t.Fatal("untraced memristive array must be reorderable")
	}
	var trace []mem.Op
	s.SetSink(sinkFunc(func(op mem.Op, addr uint64, size int) {
		trace = append(trace, op)
	}))
	if w.(mem.BulkWords).Reorderable() {
		t.Fatal("traced array must not be reorderable")
	}
	w.(mem.BulkWords).SetSlice(0, []uint32{1, 2, 3, 4})
	dst := make([]uint32, 4)
	w.(mem.BulkWords).GetSlice(0, dst)
	if len(trace) != 8 {
		t.Fatalf("traced bulk accesses emitted %d events, want 8", len(trace))
	}
	for i, op := range trace {
		want := mem.OpWrite
		if i >= 4 {
			want = mem.OpRead
		}
		if op != want {
			t.Fatalf("trace[%d] = %v, want %v", i, op, want)
		}
	}
}

func TestResetStatsFoldsOnce(t *testing.T) {
	s := NewSpace(Config{CurrentScale: 0.7, SwitchFailProb: 0}, 2)
	w := s.Alloc(10)
	for i := 0; i < 10; i++ {
		w.Set(i, 1)
	}
	s.ResetStats()
	if st := s.Stats(); st.Writes != 0 || st.Reads != 0 {
		t.Fatalf("post-reset aggregate = %+v, want zero", st)
	}
	w.Get(0)
	if st := s.Stats(); st.Reads != 1 {
		t.Fatalf("post-reset Reads = %d, want 1", st.Reads)
	}
	if !s.Approximate() {
		t.Fatal("memristive space must report Approximate")
	}
	if got := s.Config().CurrentScale; got != 0.7 {
		t.Fatalf("Config().CurrentScale = %v, want 0.7", got)
	}
}

func peek(w mem.Words, i int) uint32 { return w.(mem.Peeker).Peek(i) }

type sinkFunc func(op mem.Op, addr uint64, size int)

func (f sinkFunc) Access(op mem.Op, addr uint64, size int) { f(op, addr, size) }
