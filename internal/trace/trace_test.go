package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"approxsort/internal/mem"
	"approxsort/internal/rng"
)

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Access(mem.OpRead, 100, 4)
	r.Access(mem.OpWrite, 200, 4)
	if len(r.Events()) != 2 {
		t.Fatalf("recorded %d events", len(r.Events()))
	}
	if e := r.Events()[1]; e.Op != mem.OpWrite || e.Addr != 200 || e.Size != 4 {
		t.Errorf("event = %+v", e)
	}
	var sink Recorder
	r.Replay(&sink)
	if len(sink.Events()) != 2 {
		t.Error("replay lost events")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear")
	}
}

func roundTrip(t *testing.T, events []Event) []Event {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		w.Access(e.Op, e.Addr, e.Size)
	}
	if w.Count() != len(events) {
		t.Fatalf("writer count %d, want %d", w.Count(), len(events))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	return got
}

func TestRoundTripBasic(t *testing.T) {
	events := []Event{
		{mem.OpRead, 0, 4},
		{mem.OpWrite, 4096, 4},
		{mem.OpRead, 4, 64}, // backwards delta
		{mem.OpWrite, 1 << 40, 8},
		{mem.OpRead, 1<<40 - 17, 1},
	}
	got := roundTrip(t, events)
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := rng.New(seed)
		events := make([]Event, int(n)%500)
		addr := uint64(0)
		for i := range events {
			// Mix small forward deltas (typical array sweeps) with jumps.
			switch r.Intn(4) {
			case 0:
				addr += 4
			case 1:
				addr += uint64(r.Intn(4096))
			case 2:
				if addr > 1024 {
					addr -= uint64(r.Intn(1024))
				}
			default:
				addr = uint64(r.Uint32())
			}
			op := mem.OpRead
			if r.Bernoulli(0.5) {
				op = mem.OpWrite
			}
			events[i] = Event{op, addr, []int{1, 4, 8, 64}[r.Intn(4)]}
		}
		got := roundTrip(t, events)
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriterRejectsBadSize(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(mem.OpRead, 0, 65)
	if err := w.Close(); err == nil {
		t.Error("size 65 not rejected")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Access(mem.OpWrite, 123456, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the last byte of the event payload.
	data := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated event not reported")
	}
}

func TestReplayAllAndTee(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Access(mem.OpWrite, uint64(i*4), 4)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b Recorder
	n, err := r.ReplayAll(Tee{&a, &b})
	if err != nil || n != 100 {
		t.Fatalf("ReplayAll = (%d, %v)", n, err)
	}
	if len(a.Events()) != 100 || len(b.Events()) != 100 {
		t.Error("tee did not fan out")
	}
}

func TestCompactness(t *testing.T) {
	// Sequential sweeps must encode in ~2 bytes per event.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Access(mem.OpWrite, uint64(i*4), 4)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / 10000; perEvent > 3 {
		t.Errorf("sequential trace costs %.2f bytes/event, want <= 3", perEvent)
	}
}
