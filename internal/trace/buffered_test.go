package trace

import (
	"reflect"
	"testing"

	"approxsort/internal/mem"
)

// TestBufferedForwardsInOrder drives more events than one batch holds
// through a Buffered sink and asserts the downstream recorder sees the
// identical stream, in order, once the tail is flushed.
func TestBufferedForwardsInOrder(t *testing.T) {
	var direct, viaBuf Recorder
	b := NewBuffered(&viaBuf, 16)
	const n = 100 // 6 full batches plus a partial tail
	for i := 0; i < n; i++ {
		op := mem.OpRead
		if i%3 == 0 {
			op = mem.OpWrite
		}
		direct.Access(op, uint64(i)*4, 4)
		b.Access(op, uint64(i)*4, 4)
	}
	if got := len(viaBuf.Events()); got != 96 {
		t.Fatalf("before Flush: downstream has %d events, want 96 (full batches only)", got)
	}
	b.Flush()
	if !reflect.DeepEqual(viaBuf.Events(), direct.Events()) {
		t.Fatal("buffered stream differs from direct stream")
	}
}

// TestBufferedFlushEmpty asserts Flush on an empty batch is a no-op and
// repeated flushes do not duplicate events.
func TestBufferedFlushEmpty(t *testing.T) {
	var rec Recorder
	b := NewBuffered(&rec, 0)
	b.Flush()
	b.Access(mem.OpWrite, 8, 4)
	b.Flush()
	b.Flush()
	if len(rec.Events()) != 1 {
		t.Fatalf("downstream has %d events, want 1", len(rec.Events()))
	}
}
