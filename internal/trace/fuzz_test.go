package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary byte strings to the trace decoder: it must
// either decode events or return an error, never panic or loop.
func FuzzReader(f *testing.F) {
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x00\x00"))
	f.Add([]byte(magic + "\x05\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzRoundTrip checks that any event sequence derived from fuzz input
// encodes and decodes losslessly.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var events []Event
		addr := uint64(0)
		for i := 0; i+1 < len(data); i += 2 {
			addr += uint64(data[i])
			e := Event{Addr: addr, Size: int(data[i+1])%64 + 1}
			if data[i]%2 == 1 {
				e.Op = 1
			}
			events = append(events, e)
			w.Access(e.Op, e.Addr, e.Size)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range events {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("event %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing data: %v", err)
		}
	})
}
