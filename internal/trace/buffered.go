package trace

import "approxsort/internal/mem"

// DefaultBufferedEvents is the Buffered sink's default batch capacity.
// 4096 events amortize the downstream dispatch well below the cost of
// one event's encoding while keeping the retained batch under 100 KB.
const DefaultBufferedEvents = 4096

// Buffered is a mem.Sink that batches events in memory and forwards them
// to the wrapped sink, in arrival order, whenever the batch fills or
// Flush is called. Buffering never reorders or drops events, so a
// single-stream capture (one space, one sink) observes the identical
// event sequence — only the per-access dispatch to the downstream sink
// is amortized.
//
// Do not interpose Buffered on one of several sinks feeding an
// order-sensitive consumer (e.g. the hybrid memory system's per-region
// sinks): batching delays this stream's events relative to the others',
// which changes any cross-stream interleaving the consumer observes.
//
// The caller must Flush (or the batch tail is lost) before reading
// whatever the downstream sink produced.
type Buffered struct {
	dst mem.Sink
	buf []Event
}

// NewBuffered wraps dst with an events-sized batch buffer
// (DefaultBufferedEvents if events <= 0).
func NewBuffered(dst mem.Sink, events int) *Buffered {
	if events <= 0 {
		events = DefaultBufferedEvents
	}
	return &Buffered{dst: dst, buf: make([]Event, 0, events)}
}

// Access implements mem.Sink.
func (b *Buffered) Access(op mem.Op, addr uint64, size int) {
	b.buf = append(b.buf, Event{Op: op, Addr: addr, Size: size})
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
}

// Flush forwards every buffered event downstream, in order, and empties
// the batch.
func (b *Buffered) Flush() {
	for _, e := range b.buf {
		b.dst.Access(e.Op, e.Addr, e.Size)
	}
	b.buf = b.buf[:0]
}
