// Package trace implements the memory-trace infrastructure behind the
// paper's trace-driven methodology (Section 3.2): access events, a compact
// binary on-disk encoding, and sinks that record or persist the access
// stream produced by the instrumented arrays in package mem.
//
// A trace can be captured once from a sorting run and replayed any number
// of times through the cache + PCM pipeline (internal/cache, internal/pcm)
// with different memory configurations — exactly how the paper separates
// trace collection on a real machine from simulation.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"approxsort/internal/mem"
)

// Event is one memory access.
type Event struct {
	// Op is the access type.
	Op mem.Op
	// Addr is the byte address in the simulated physical address space.
	Addr uint64
	// Size is the access width in bytes.
	Size int
}

// Recorder is a mem.Sink that buffers events in memory.
type Recorder struct {
	events []Event
}

// Access implements mem.Sink.
func (r *Recorder) Access(op mem.Op, addr uint64, size int) {
	r.events = append(r.events, Event{Op: op, Addr: addr, Size: size})
}

// Events returns the recorded access stream.
func (r *Recorder) Events() []Event { return r.events }

// Reset discards all recorded events.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Replay feeds every recorded event into sink, in order.
func (r *Recorder) Replay(sink mem.Sink) {
	for _, e := range r.events {
		sink.Access(e.Op, e.Addr, e.Size)
	}
}

// magic identifies the binary trace format; version bumps on layout
// changes.
const magic = "APXTRC1\n"

// Writer encodes events to an io.Writer as they arrive; it is itself a
// mem.Sink, so it can capture a live run straight to disk. Events are
// delta-encoded: [flagByte][uvarint addrDelta], where the flag byte packs
// the op, the sign of the address delta, and a small size code. Sorting
// traces sweep arrays linearly, so deltas are tiny and the stream
// averages ~2.5 bytes per event.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	err      error
	n        int
}

// NewWriter writes the trace header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

const (
	flagWrite   = 1 << 0
	flagNegAddr = 1 << 1
	// Size is encoded in bits 2..7 (sizes up to 63 bytes cover word and
	// cache-line accesses; 0 means 64).
	sizeShift = 2
)

// Access implements mem.Sink. Errors are latched and surfaced by Close.
func (t *Writer) Access(op mem.Op, addr uint64, size int) {
	if t.err != nil {
		return
	}
	var flag byte
	if op == mem.OpWrite {
		flag |= flagWrite
	}
	delta := int64(addr - t.lastAddr)
	if delta < 0 {
		flag |= flagNegAddr
		delta = -delta
	}
	if size <= 0 || size > 64 {
		t.err = fmt.Errorf("trace: unsupported access size %d", size)
		return
	}
	flag |= byte(size%64) << sizeShift
	var buf [binary.MaxVarintLen64 + 1]byte
	buf[0] = flag
	n := binary.PutUvarint(buf[1:], uint64(delta))
	if _, err := t.w.Write(buf[:n+1]); err != nil {
		t.err = err
		return
	}
	t.lastAddr = addr
	t.n++
}

// Count returns the number of events written so far.
func (t *Writer) Count() int { return t.n }

// Close flushes the stream and returns any latched error.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace stream written by Writer.
type Reader struct {
	r        *bufio.Reader
	lastAddr uint64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	return &Reader{r: br}, nil
}

// Next returns the next event, or io.EOF at end of stream.
func (t *Reader) Next() (Event, error) {
	flag, err := t.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF passes through
	}
	delta, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Event{}, fmt.Errorf("trace: truncated event: %w", err)
	}
	if flag&flagNegAddr != 0 {
		t.lastAddr -= delta
	} else {
		t.lastAddr += delta
	}
	size := int(flag >> sizeShift)
	if size == 0 {
		size = 64
	}
	op := mem.OpRead
	if flag&flagWrite != 0 {
		op = mem.OpWrite
	}
	return Event{Op: op, Addr: t.lastAddr, Size: size}, nil
}

// ReplayAll streams every remaining event into sink and returns the count.
func (t *Reader) ReplayAll(sink mem.Sink) (int, error) {
	n := 0
	for {
		e, err := t.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Access(e.Op, e.Addr, e.Size)
		n++
	}
}

// Tee fans one access stream out to multiple sinks (e.g. record to disk
// and simulate simultaneously).
type Tee []mem.Sink

// Access implements mem.Sink.
func (t Tee) Access(op mem.Op, addr uint64, size int) {
	for _, s := range t {
		s.Access(op, addr, size)
	}
}
