package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Norm() // populate the spare so Reseed must clear it
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormAt(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormAt(5, 0.5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.02 {
		t.Errorf("NormAt(5,0.5) mean = %v", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(seed uint64) bool {
		r.Reseed(seed)
		out := make([]int, 50)
		r.Perm(out)
		seen := make([]bool, 50)
		for _, v := range out {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func TestSplitKeyedByCoordinates(t *testing.T) {
	base := Split(1, "quicksort", 0.055)
	if base != Split(1, "quicksort", 0.055) {
		t.Error("Split is not deterministic for identical coordinates")
	}
	variants := []uint64{
		Split(2, "quicksort", 0.055),    // different base
		Split(1, "mergesort", 0.055),    // different string coord
		Split(1, "quicksort", 0.06),     // different float coord
		Split(1, 0.055, "quicksort"),    // coordinate order matters
		Split(1, "quicksort"),           // arity matters
		Split(1, "quicksort", 0.055, 0), // trailing coord matters
	}
	seen := map[uint64]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collided with an earlier stream seed", i)
		}
		seen[v] = true
	}
}

func TestSplitTypeTagging(t *testing.T) {
	// The same numeric value under different Go types must not collide:
	// int(3), uint64(3) and float64(3) are distinct coordinates.
	a := Split(9, 3)
	b := Split(9, uint64(3))
	c := Split(9, float64(3))
	if a == b || b == c || a == c {
		t.Errorf("type tags failed to separate coordinates: %x %x %x", a, b, c)
	}
}

func TestSplitPanicsOnUnsupportedType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split accepted an unsupported coordinate type")
		}
	}()
	Split(1, struct{}{})
}
