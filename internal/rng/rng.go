// Package rng provides a small, fast, deterministic random number
// generator used by every Monte-Carlo component of the simulator.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by Blackman and Vigna. It is not safe for concurrent use; each
// goroutine should own its own Source (see Split).
//
// math/rand is avoided on purpose: the simulator draws billions of variates
// and the global-lock and interface costs of math/rand dominate at that
// scale, and we want stable streams that do not depend on the Go release.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number source.
// The zero value is not valid; use New.
type Source struct {
	s0, s1, s2, s3 uint64
	// spare holds a cached standard normal variate produced by the polar
	// method, which generates two at a time.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed reinitializes the source from seed, discarding all state.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro must not start in the all-zero state. splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	r.hasSpare = false
}

// Split returns a new Source whose stream is independent of r's, suitable
// for handing to another goroutine.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// splitmix is the splitmix64 finalizer, the mixing primitive behind both
// Reseed and Split.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives the seed of an independent child stream from a base seed
// and a tuple of coordinates. It is the seeding contract of every sweep in
// the repository: a grid point's stream is keyed by the point's
// coordinates (algorithm name, T, n, distribution …), never by its
// position in a flattened loop, so adding, removing or reordering grid
// entries leaves every other point's numbers untouched, and parallel and
// sequential sweeps are bit-identical.
//
// Coordinates may be string, int, uint64, float64 or bool; each is mixed
// under a type tag, so Split(s, 1) and Split(s, 1.0) differ and string
// tuples cannot collide by concatenation. Any other type panics: a
// coordinate the caller cannot name stably has no place in a seed.
func Split(base uint64, coords ...any) uint64 {
	h := splitmix(base ^ 0x6a09e667f3bcc909)
	for _, c := range coords {
		switch v := c.(type) {
		case string:
			h = splitmix(h ^ 0x737472) // "str"
			for i := 0; i < len(v); i++ {
				h = splitmix(h ^ uint64(v[i]))
			}
			h = splitmix(h ^ uint64(len(v)))
		case int:
			h = splitmix(h ^ 0x696e74) // "int"
			h = splitmix(h ^ uint64(v))
		case uint64:
			h = splitmix(h ^ 0x753634) // "u64"
			h = splitmix(h ^ v)
		case float64:
			h = splitmix(h ^ 0x663634) // "f64"
			h = splitmix(h ^ math.Float64bits(v))
		case bool:
			h = splitmix(h ^ 0x626f6f) // "boo"
			if v {
				h = splitmix(h ^ 1)
			} else {
				h = splitmix(h)
			}
		default:
			panic(fmt.Sprintf("rng: Split coordinate of unsupported type %T", c))
		}
	}
	return splitmix(h)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, 64-bit variant.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Norm returns a standard normal variate (mean 0, standard deviation 1)
// using the Marsaglia polar method.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormAt returns a normal variate with the given mean and standard
// deviation.
func (r *Source) NormAt(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
