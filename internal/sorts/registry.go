package sorts

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// This file is the algorithm-axis mirror of the internal/memmodel backend
// registry: a name-keyed table of Algorithm constructors, each carrying a
// declared cost Profile, so the planner, the sortd API, the experiment
// drivers and the CLIs all resolve algorithms through one seam. A new
// sorting algorithm is an init-time Register call plus a Profile — no
// switch statements to grow.

// Profile declares an algorithm's cost shape — the facts the planner and
// the verifier consume without running the sort.
type Profile struct {
	// Alpha is αalg(n): the analytic expected number of key memory writes
	// to sort n elements (Section 4.3). Nil means the algorithm has no
	// analytic write model and the planner cannot route it.
	Alpha func(n int) float64
	// Passes is the number of full data passes for pass-structured
	// algorithms (the LSD family); 0 means the pass count is size- or
	// data-dependent (comparison sorts, MSD recursion).
	Passes int
	// ExactWrites marks Alpha as an exact structural count of the sort's
	// key writes for n ≥ 2, not just an expectation. The verifier pins
	// such algorithms' approx-stage write counters to Alpha run-for-run.
	ExactWrites bool
	// Reorderable marks algorithms with a bulk path gated on
	// mem.Reorderable (the access-equivalent slice rewrite of the radix
	// passes).
	Reorderable bool
	// SortsIDs marks support for the refine stage's SortIDs contract
	// (every registered algorithm supports it; histogram-style rewrites
	// that cannot sort by key lookup would not).
	SortsIDs bool
}

// WritesPerElement returns α(n)/n, the profile's writes-per-element
// coefficient at size n (0 when n < 1 or Alpha is nil).
func (p Profile) WritesPerElement(n int) float64 {
	if n < 1 || p.Alpha == nil {
		return 0
	}
	return p.Alpha(n) / float64(n)
}

// Profiled is implemented by Algorithm values that declare a cost profile.
// Every registry algorithm implements it; ad-hoc algorithms (the histsort
// rewrites) may not, in which case the planner refuses to route them.
type Profiled interface {
	Profile() Profile
}

// ProfileOf returns alg's declared profile, if it has one.
func ProfileOf(alg Algorithm) (Profile, bool) {
	p, ok := alg.(Profiled)
	if !ok {
		return Profile{}, false
	}
	return p.Profile(), true
}

// AlphaQuicksort returns αquicksort(n) ≈ n·log2(n)/2.
func AlphaQuicksort(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) / 2
}

// AlphaMergesort returns αmergesort(n) ≈ n·log2(n).
func AlphaMergesort(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n))
}

// AlphaRadix returns αLSD/MSD(n) for queue-bucket radix with b-bit digits:
// two key writes per element per pass, ceil(32/b) passes. (MSD on uniform
// keys recurses nearly to full depth, so the same count is the paper's
// working approximation: αradix(n)/n is a constant.)
func AlphaRadix(bits int) func(n int) float64 {
	passes := (32 + bits - 1) / bits
	return func(n int) float64 { return float64(2 * passes * n) }
}

// Info is one registry entry: the constructor plus the metadata the API
// layers serve (GET /v1/algorithms) and the auto planner consults.
type Info struct {
	// Name is the registry key ("quicksort", "lsd", "onesweep-lsd", …).
	Name string
	// Doc is a one-line description.
	Doc string
	// Radix marks algorithms parameterized by a digit width; DefaultBits
	// is the width New applies when the caller passes 0 (also the width
	// AutoCandidates evaluates the algorithm at).
	Radix       bool
	DefaultBits int
	// Auto includes the algorithm in the mode=auto selection roster.
	Auto bool
	// New constructs the algorithm at the given digit width (ignored for
	// non-radix algorithms; 0 selects DefaultBits).
	New func(bits int) Algorithm
}

// construct applies the DefaultBits fallback.
func (in Info) construct(bits int) Algorithm {
	if bits == 0 {
		bits = in.DefaultBits
	}
	return in.New(bits)
}

// UnknownAlgorithmError is returned by Lookup and New for names absent
// from the registry. sortd surfaces it as HTTP 400 with the allowed names.
type UnknownAlgorithmError struct {
	Name string
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("sorts: unknown algorithm %q (registered: %s)",
		e.Name, strings.Join(Names(), ", "))
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Info)
)

// Register adds an algorithm under its Name. It panics on a duplicate,
// empty or constructor-less entry (registration is an init-time
// programming act).
func Register(in Info) {
	if in.Name == "" {
		panic("sorts: Register with empty algorithm name")
	}
	if in.New == nil {
		panic(fmt.Sprintf("sorts: Register(%q) with nil constructor", in.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[in.Name]; dup {
		panic(fmt.Sprintf("sorts: duplicate algorithm %q", in.Name))
	}
	registry[in.Name] = in
}

// Lookup returns the registry entry for name. Unknown names yield
// *UnknownAlgorithmError.
func Lookup(name string) (Info, error) {
	regMu.RLock()
	in, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Info{}, &UnknownAlgorithmError{Name: name}
	}
	return in, nil
}

// New constructs the named algorithm at the given digit width (0 selects
// the entry's default width; the width is ignored for non-radix
// algorithms). Unknown names yield *UnknownAlgorithmError.
func New(name string, bits int) (Algorithm, error) {
	in, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return in.construct(bits), nil
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infos returns every registry entry, sorted by name.
func Infos() []Info {
	names := Names()
	infos := make([]Info, 0, len(names))
	for _, name := range names {
		in, _ := Lookup(name)
		infos = append(infos, in)
	}
	return infos
}

// Roster constructs algorithms by registry name, each at its default
// digit width when bits is 0.
func Roster(names []string, bits int) ([]Algorithm, error) {
	algs := make([]Algorithm, 0, len(names))
	for _, name := range names {
		alg, err := New(name, bits)
		if err != nil {
			return nil, err
		}
		algs = append(algs, alg)
	}
	return algs, nil
}

// Candidate pairs a constructed algorithm with its registry name, which
// travels through auto-selection into plans, metrics labels and reports.
type Candidate struct {
	Name string
	Alg  Algorithm
}

// AutoCandidates returns the mode=auto selection roster: every Auto-marked
// entry at its default digit width, in sorted name order — the iteration
// order is part of the planner's determinism contract (ties break to the
// earlier name).
func AutoCandidates() []Candidate {
	var cands []Candidate
	for _, in := range Infos() {
		if in.Auto {
			cands = append(cands, Candidate{Name: in.Name, Alg: in.construct(0)})
		}
	}
	return cands
}

func init() {
	Register(Info{
		Name: "quicksort",
		Doc:  "randomized quicksort with Hoare partitioning (≈ n·log2(n)/2 key writes, the fewest of the roster)",
		Auto: true,
		New:  func(int) Algorithm { return Quicksort{} },
	})
	Register(Info{
		Name: "mergesort",
		Doc:  "bottom-up ping-pong mergesort (≈ n·log2(n) key writes; most sensitive to approximate memory)",
		Auto: true,
		New:  func(int) Algorithm { return Mergesort{} },
	})
	Register(Info{
		Name:        "lsd",
		Doc:         "least-significant-digit radix sort with queue buckets (2·ceil(32/b)·n key writes)",
		Radix:       true,
		DefaultBits: 6,
		Auto:        true,
		New:         func(bits int) Algorithm { return LSD{Bits: bits} },
	})
	Register(Info{
		Name:        "msd",
		Doc:         "most-significant-digit radix sort with queue buckets and insertion-sort leaves",
		Radix:       true,
		DefaultBits: 6,
		Auto:        true,
		New:         func(bits int) Algorithm { return MSD{Bits: bits} },
	})
	Register(Info{
		Name:        "onesweep-lsd",
		Doc:         "write-combining LSD radix: wide digits, fused count+read sweep, per-bucket software write-combining buffers (2·ceil(32/b)·n key writes at b=8: 8n, vs 12n for 6-bit LSD)",
		Radix:       true,
		DefaultBits: 8,
		Auto:        true,
		New:         func(bits int) Algorithm { return OneSweepLSD{Bits: bits} },
	})
}
