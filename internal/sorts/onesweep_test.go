package sorts

import (
	"encoding/binary"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
)

// keyWrites sorts keys on precise memory in an isolated key space and
// returns the charged key-write count (Load discounted).
func keyWrites(alg Algorithm, keys []uint32, withIDs bool) int {
	ks := mem.NewPreciseSpace()
	shadow := mem.NewPreciseSpace()
	p := Pair{Keys: ks.Alloc(len(keys))}
	mem.Load(p.Keys, keys)
	if withIDs {
		p.IDs = shadow.Alloc(len(keys))
		mem.Load(p.IDs, dataset.IDs(len(keys)))
	}
	base := ks.Stats().Writes
	alg.Sort(p, Env{KeySpace: ks, IDSpace: shadow, R: rng.New(3)})
	return ks.Stats().Writes - base
}

// TestOneSweepExactWrites pins the structural write identity the profile
// declares ExactWrites for: 2 key writes per element per pass (one into
// the write-combining buffer, one in the burst flush), plus the n-word
// copy home when the pass count is odd. The count must hold at sizes
// that leave buffers partially filled (n not a multiple of wcWords) and
// be independent of whether IDs ride along.
func TestOneSweepExactWrites(t *testing.T) {
	cases := []struct {
		bits, passes int
		odd          bool
	}{
		{8, 4, false},
		{6, 6, false},
		{5, 7, true},
		{16, 2, false},
	}
	for _, tc := range cases {
		alg := OneSweepLSD{Bits: tc.bits}
		prof, _ := ProfileOf(alg)
		for _, n := range []int{2, 17, wcWords, wcWords + 1, 1000, 4096} {
			keys := dataset.Uniform(n, uint64(n))
			want := 2 * tc.passes * n
			if tc.odd {
				want += n
			}
			if got := int(prof.Alpha(n)); got != want {
				t.Fatalf("%s: α(%d) = %d, want %d", alg.Name(), n, got, want)
			}
			for _, withIDs := range []bool{false, true} {
				if got := keyWrites(alg, keys, withIDs); got != want {
					t.Errorf("%s n=%d withIDs=%v: %d key writes, want exactly %d",
						alg.Name(), n, withIDs, got, want)
				}
			}
		}
	}
}

// TestOneSweepIsStable pins LSD stability through the write-combining
// buffers: equal keys must keep their input order (the flush is a FIFO
// per bucket).
func TestOneSweepIsStable(t *testing.T) {
	keys := dataset.FewDistinct(500, 4, 11)
	gotKeys, gotIDs := runSort(OneSweepLSD{Bits: 8}, keys, true)
	for i := 1; i < len(gotKeys); i++ {
		if gotKeys[i] == gotKeys[i-1] && gotIDs[i] < gotIDs[i-1] {
			t.Fatalf("equal keys reordered at %d: ids %d before %d", i, gotIDs[i-1], gotIDs[i])
		}
	}
}

// TestOneSweepSortIDs pins the refine-stage contract: SortIDs orders a
// bare ID array by key lookup with exactly one lookup per element per
// pass, and charges the same per-pass write shape as Sort.
func TestOneSweepSortIDs(t *testing.T) {
	const n = 700
	keys := dataset.Uniform(n, 19)
	alg := OneSweepLSD{Bits: 8}
	space := mem.NewPreciseSpace()
	ids := space.Alloc(n)
	mem.Load(ids, dataset.IDs(n))
	base := space.Stats().Writes
	lookups := 0
	alg.SortIDs(ids, n, func(id uint32) uint32 { lookups++; return keys[id] }, Env{IDSpace: space})
	passes, _ := digitWidth(8)
	if want := n * passes; lookups != want {
		t.Errorf("%d key lookups, want exactly %d (one per element per pass)", lookups, want)
	}
	if got, want := space.Stats().Writes-base, 2*passes*n; got != want {
		t.Errorf("%d ID writes, want exactly %d", got, want)
	}
	out := mem.ReadAll(ids)
	for i := 1; i < n; i++ {
		if keys[out[i-1]] > keys[out[i]] {
			t.Fatalf("IDs not ordered by key at %d", i)
		}
	}
}

// FuzzOneSweep drives the write-combining permute with arbitrary key
// material and checks the full contract on every input: sorted output,
// multiset preservation, and the exact structural write count (the
// invariant the hybrid planner and the alpha-exact verifier both lean
// on). Buffer-boundary bugs — a flush that drops or double-writes a
// tail — surface as either a multiset or a write-count violation.
func FuzzOneSweep(f *testing.F) {
	f.Add([]byte{}, uint8(8))
	f.Add([]byte{1, 2, 3, 4, 255, 0, 0, 0}, uint8(8))
	f.Add(make([]byte, 4*wcWords), uint8(6))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 9, 9, 9, 9}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, bitsSeed uint8) {
		bits := int(bitsSeed)%16 + 1
		if len(raw) > 4*4096 {
			raw = raw[:4*4096]
		}
		n := len(raw) / 4
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		alg := OneSweepLSD{Bits: bits}
		space := mem.NewPreciseSpace()
		p := Pair{Keys: space.Alloc(n)}
		mem.Load(p.Keys, keys)
		base := space.Stats().Writes
		alg.Sort(p, Env{KeySpace: space, IDSpace: space, R: rng.New(1)})
		got := mem.ReadAll(p.Keys)
		if !sortedness.IsSorted(got) {
			t.Fatalf("bits=%d n=%d: output not sorted", bits, n)
		}
		if !sortedness.SameMultiset(got, keys) {
			t.Fatalf("bits=%d n=%d: output not a permutation of the input", bits, n)
		}
		prof, _ := ProfileOf(alg)
		if want := int(prof.Alpha(n)); space.Stats().Writes-base != want {
			t.Fatalf("bits=%d n=%d: %d key writes, want exactly %d",
				bits, n, space.Stats().Writes-base, want)
		}
	})
}
