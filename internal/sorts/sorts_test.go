package sorts

import (
	"sort"
	"testing"
	"testing/quick"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
)

func allAlgorithms() []Algorithm {
	algs := Standard(3, 4, 5, 6)
	for _, b := range []int{3, 6, 8} {
		algs = append(algs, OneSweepLSD{Bits: b})
	}
	return algs
}

func preciseEnv() (Env, *mem.PreciseSpace) {
	s := mem.NewPreciseSpace()
	return Env{KeySpace: s, IDSpace: s, R: rng.New(7)}, s
}

// runSort loads keys (and identity IDs) into precise memory, sorts, and
// returns the resulting keys and ids.
func runSort(alg Algorithm, keys []uint32, withIDs bool) ([]uint32, []uint32) {
	env, space := preciseEnv()
	p := Pair{Keys: space.Alloc(len(keys))}
	mem.Load(p.Keys, keys)
	if withIDs {
		p.IDs = space.Alloc(len(keys))
		mem.Load(p.IDs, dataset.IDs(len(keys)))
	}
	alg.Sort(p, env)
	var ids []uint32
	if withIDs {
		ids = mem.ReadAll(p.IDs)
	}
	return mem.ReadAll(p.Keys), ids
}

func TestAlgorithmsSortFixedInputs(t *testing.T) {
	inputs := map[string][]uint32{
		"empty":      {},
		"single":     {42},
		"pair":       {2, 1},
		"sorted":     dataset.Sorted(100),
		"reverse":    dataset.Reverse(101),
		"uniform":    dataset.Uniform(500, 1),
		"duplicates": dataset.FewDistinct(300, 3, 2),
		"zipf":       dataset.Zipf(300, 20, 1.2, 3),
		"allsame":    dataset.FewDistinct(200, 1, 4),
		"extremes":   {0, 0xffffffff, 0, 0xffffffff, 7},
	}
	for _, alg := range allAlgorithms() {
		for name, keys := range inputs {
			got, _ := runSort(alg, keys, false)
			if !sortedness.IsSorted(got) {
				t.Errorf("%s on %s: output not sorted", alg.Name(), name)
			}
			if !sortedness.SameMultiset(got, keys) {
				t.Errorf("%s on %s: output not a permutation", alg.Name(), name)
			}
		}
	}
}

func TestAlgorithmsCarryIDs(t *testing.T) {
	keys := dataset.Uniform(400, 5)
	for _, alg := range allAlgorithms() {
		gotKeys, gotIDs := runSort(alg, keys, true)
		if !sortedness.IsSorted(gotKeys) {
			t.Errorf("%s: keys not sorted", alg.Name())
			continue
		}
		seen := make([]bool, len(keys))
		for i, id := range gotIDs {
			if int(id) >= len(keys) || seen[id] {
				t.Errorf("%s: IDs are not a permutation", alg.Name())
				break
			}
			seen[id] = true
			if keys[id] != gotKeys[i] {
				t.Errorf("%s: ID %d detached from its key (pos %d: key %d, original %d)",
					alg.Name(), id, i, gotKeys[i], keys[id])
				break
			}
		}
	}
}

func TestAlgorithmsQuick(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		f := func(keys []uint32) bool {
			if len(keys) > 300 {
				keys = keys[:300]
			}
			got, _ := runSort(alg, keys, false)
			return sortedness.IsSorted(got) && sortedness.SameMultiset(got, keys)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestSortIDsOrdersByKey(t *testing.T) {
	keys := dataset.Uniform(300, 9)
	for _, alg := range allAlgorithms() {
		env, space := preciseEnv()
		ids := space.Alloc(len(keys))
		mem.Load(ids, dataset.IDs(len(keys)))
		alg.SortIDs(ids, len(keys), func(id uint32) uint32 { return keys[id] }, env)
		got := mem.ReadAll(ids)
		seen := make([]bool, len(keys))
		prev := uint32(0)
		for i, id := range got {
			if seen[id] {
				t.Errorf("%s: SortIDs duplicated id %d", alg.Name(), id)
				break
			}
			seen[id] = true
			if k := keys[id]; i > 0 && k < prev {
				t.Errorf("%s: SortIDs order violated at %d", alg.Name(), i)
				break
			} else {
				prev = k
			}
		}
	}
}

func TestSortIDsPartialCount(t *testing.T) {
	// Only the first `count` entries may be touched.
	keys := dataset.Uniform(100, 11)
	for _, alg := range allAlgorithms() {
		env, space := preciseEnv()
		ids := space.Alloc(100)
		mem.Load(ids, dataset.IDs(100))
		alg.SortIDs(ids, 60, func(id uint32) uint32 { return keys[id] }, env)
		got := mem.ReadAll(ids)
		for i := 60; i < 100; i++ {
			if got[i] != uint32(i) {
				t.Errorf("%s: SortIDs touched index %d beyond count", alg.Name(), i)
			}
		}
		prev := uint32(0)
		for i := 0; i < 60; i++ {
			if k := keys[got[i]]; i > 0 && k < prev {
				t.Errorf("%s: prefix not sorted at %d", alg.Name(), i)
				break
			} else {
				prev = k
			}
		}
	}
}

func TestSortIDsEmptyAndSingle(t *testing.T) {
	for _, alg := range allAlgorithms() {
		env, space := preciseEnv()
		ids := space.Alloc(4)
		mem.Load(ids, []uint32{3, 2, 1, 0})
		alg.SortIDs(ids, 0, func(id uint32) uint32 { return id }, env)
		alg.SortIDs(ids, 1, func(id uint32) uint32 { return id }, env)
		got := mem.ReadAll(ids)
		for i, want := range []uint32{3, 2, 1, 0} {
			if got[i] != want {
				t.Errorf("%s: count<=1 SortIDs mutated array", alg.Name())
			}
		}
	}
}

func TestWriteCountScales(t *testing.T) {
	// Sanity-check the write-count hierarchy the paper's cost analysis
	// relies on (Section 4.3): quicksort ≈ n·log2(n)/2 key writes,
	// mergesort ≈ n·log2(n), LSD(b) ≈ 2n·ceil(32/b).
	const n = 4096 // log2 = 12
	keys := dataset.Uniform(n, 13)

	measure := func(alg Algorithm) int {
		env, _ := preciseEnv()
		ks := mem.NewPreciseSpace() // isolate key writes
		env.KeySpace = ks
		p := Pair{Keys: ks.Alloc(n)}
		mem.Load(p.Keys, keys)
		alg.Sort(p, env)
		return ks.Stats().Writes - n // discount the initial Load
	}

	qs := measure(Quicksort{})
	ms := measure(Mergesort{})
	lsd6 := measure(LSD{Bits: 6})
	lsd3 := measure(LSD{Bits: 3})

	if lo, hi := n*12/2*6/10, n*12/2*2; qs < lo || qs > hi {
		t.Errorf("quicksort key writes = %d, want within [%d, %d] (~n·log2(n)/2)", qs, lo, hi)
	}
	if lo, hi := n*12, n*13+n; ms < lo || ms > hi {
		t.Errorf("mergesort key writes = %d, want ~n·log2(n) in [%d, %d]", ms, lo, hi)
	}
	if want := 2 * n * 6; lsd6 != want {
		t.Errorf("6-bit LSD key writes = %d, want exactly %d (2n per pass)", lsd6, want)
	}
	if want := 2 * n * 11; lsd3 != want {
		t.Errorf("3-bit LSD key writes = %d, want exactly %d", lsd3, want)
	}
	if ms <= qs {
		t.Errorf("mergesort writes (%d) should exceed quicksort writes (%d)", ms, qs)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := mem.NewPreciseSpace()
	q := newQueue(s)
	const total = queueChunkWords*2 + 37 // span three chunks
	for i := 0; i < total; i++ {
		q.append(uint32(i * 3))
	}
	if q.len() != total {
		t.Fatalf("len = %d, want %d", q.len(), total)
	}
	for i := 0; i < total; i++ {
		if got := q.get(i); got != uint32(i*3) {
			t.Fatalf("get(%d) = %d, want %d", i, got, i*3)
		}
	}
}

func TestDigitWidth(t *testing.T) {
	cases := []struct{ bits, passes, width int }{
		{3, 11, 33},
		{4, 8, 32},
		{5, 7, 35},
		{6, 6, 36},
		{8, 4, 32},
	}
	for _, tc := range cases {
		p, w := digitWidth(tc.bits)
		if p != tc.passes || w != tc.width {
			t.Errorf("digitWidth(%d) = (%d, %d), want (%d, %d)", tc.bits, p, w, tc.passes, tc.width)
		}
	}
}

func TestDigitWidthPanics(t *testing.T) {
	for _, bits := range []int{0, -1, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("digitWidth(%d) did not panic", bits)
				}
			}()
			digitWidth(bits)
		}()
	}
}

func TestPairValidatePanicsOnMismatch(t *testing.T) {
	s := mem.NewPreciseSpace()
	p := Pair{Keys: s.Alloc(4), IDs: s.Alloc(3)}
	defer func() {
		if recover() == nil {
			t.Fatal("Sort with mismatched IDs did not panic")
		}
	}()
	Quicksort{}.Sort(p, Env{KeySpace: s, IDSpace: s})
}

func TestInsertionSortPair(t *testing.T) {
	s := mem.NewPreciseSpace()
	keys := []uint32{9, 1, 8, 2, 7, 3, 7, 7}
	p := Pair{Keys: s.Alloc(len(keys)), IDs: s.Alloc(len(keys))}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(len(keys)))
	insertionSortPair(p, 0, len(keys))
	got := mem.ReadAll(p.Keys)
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insertion sort wrong at %d: %v", i, got)
		}
	}
	ids := mem.ReadAll(p.IDs)
	for i, id := range ids {
		if keys[id] != got[i] {
			t.Fatalf("insertion sort detached id at %d", i)
		}
	}
}

// TestLSDIsStable checks the classic radix property: queue-bucket LSD
// preserves the input order of equal keys (the FIFO queues guarantee it),
// which database ORDER BY implementations rely on for multi-key sorts.
func TestLSDIsStable(t *testing.T) {
	keys := dataset.FewDistinct(2000, 4, 41)
	for _, alg := range []Algorithm{LSD{Bits: 3}, LSD{Bits: 6}} {
		gotKeys, gotIDs := runSort(alg, keys, true)
		for i := 1; i < len(gotKeys); i++ {
			if gotKeys[i] == gotKeys[i-1] && gotIDs[i] < gotIDs[i-1] {
				t.Errorf("%s: equal keys reordered at %d (ids %d before %d)",
					alg.Name(), i, gotIDs[i-1], gotIDs[i])
				break
			}
		}
	}
}

// TestSortsWorstCaseShapes stresses the inputs that break naive
// implementations: organ-pipe, sawtooth, and single-swap arrays.
func TestSortsWorstCaseShapes(t *testing.T) {
	organ := make([]uint32, 501)
	for i := range organ {
		if i <= 250 {
			organ[i] = uint32(i)
		} else {
			organ[i] = uint32(500 - i)
		}
	}
	saw := make([]uint32, 500)
	for i := range saw {
		saw[i] = uint32(i % 17)
	}
	oneSwap := dataset.Sorted(400)
	oneSwap[10], oneSwap[350] = oneSwap[350], oneSwap[10]

	for _, alg := range allAlgorithms() {
		for name, keys := range map[string][]uint32{"organ": organ, "saw": saw, "oneswap": oneSwap} {
			got, _ := runSort(alg, keys, false)
			if !sortedness.IsSorted(got) || !sortedness.SameMultiset(got, keys) {
				t.Errorf("%s on %s: incorrect", alg.Name(), name)
			}
		}
	}
}

// TestSortsOnApproxMemoryTerminate exercises every algorithm at the
// harshest precision: corruption mid-sort must never hang or panic.
func TestSortsOnApproxMemoryTerminate(t *testing.T) {
	for _, alg := range allAlgorithms() {
		approx := mem.NewApproxSpaceAt(0.12, 17)
		precise := mem.NewPreciseSpace()
		env := Env{KeySpace: approx, IDSpace: precise, R: rng.New(18)}
		p := Pair{Keys: approx.Alloc(2000), IDs: precise.Alloc(2000)}
		mem.Load(p.Keys, dataset.Uniform(2000, 19))
		mem.Load(p.IDs, dataset.IDs(2000))
		alg.Sort(p, env) // must terminate
		ids := mem.ReadAll(p.IDs)
		seen := make([]bool, len(ids))
		for _, id := range ids {
			if int(id) >= len(ids) || seen[id] {
				t.Errorf("%s: IDs no longer a permutation after approx sort", alg.Name())
				break
			}
			seen[id] = true
		}
	}
}

// TestApproxSortednessOrdering reproduces the qualitative Section 3.5
// finding at small scale: at T=0.055 quicksort and radix outputs are
// nearly sorted while mergesort is far worse.
func TestApproxSortednessOrdering(t *testing.T) {
	const n = 20000
	keys := dataset.Uniform(n, 23)
	remOf := func(alg Algorithm) float64 {
		approx := mem.NewApproxSpaceAt(0.055, 29)
		precise := mem.NewPreciseSpace()
		env := Env{KeySpace: approx, IDSpace: precise, R: rng.New(31)}
		p := Pair{Keys: approx.Alloc(n)}
		mem.Load(p.Keys, keys)
		alg.Sort(p, env)
		return sortedness.RemRatio(mem.ReadAll(p.Keys))
	}
	qs := remOf(Quicksort{})
	ms := remOf(Mergesort{})
	lsd := remOf(LSD{Bits: 6})
	msd := remOf(MSD{Bits: 6})
	for name, r := range map[string]float64{"quicksort": qs, "LSD": lsd, "MSD": msd} {
		if r > 0.10 {
			t.Errorf("%s Rem ratio at T=0.055 = %v, want nearly sorted (< 0.10)", name, r)
		}
	}
	if ms < 3*qs {
		t.Errorf("mergesort Rem ratio %v not clearly worse than quicksort %v", ms, qs)
	}
}

// nullSink is an order-sensitivity marker: attaching any sink makes the
// space's arrays non-reorderable, so the radix sorts must take the
// queue paths whose per-access event stream is the golden contract.
type nullSink struct{}

func (nullSink) Access(mem.Op, uint64, int) {}

func tracedEnv() (Env, *mem.PreciseSpace) {
	s := mem.NewPreciseSpace()
	s.SetSink(nullSink{})
	return Env{KeySpace: s, IDSpace: s, R: rng.New(7)}, s
}

// TestAlgorithmsSortTracedArrays pins the queue fallback: with a sink
// attached the bulk rewrite is ineligible, and the historical
// queue-bucket implementation must still sort correctly, with and
// without a carried ID array.
func TestAlgorithmsSortTracedArrays(t *testing.T) {
	keys := dataset.Uniform(600, 13)
	for _, alg := range allAlgorithms() {
		for _, withIDs := range []bool{false, true} {
			env, space := tracedEnv()
			p := Pair{Keys: space.Alloc(len(keys))}
			mem.Load(p.Keys, keys)
			if withIDs {
				p.IDs = space.Alloc(len(keys))
				mem.Load(p.IDs, dataset.IDs(len(keys)))
			}
			if bulkEligible(p) {
				t.Fatal("sink-attached arrays must not be bulk eligible")
			}
			alg.Sort(p, env)
			got := mem.ReadAll(p.Keys)
			if !sortedness.IsSorted(got) {
				t.Errorf("%s (traced, ids=%v): output not sorted", alg.Name(), withIDs)
			}
			if !sortedness.SameMultiset(got, keys) {
				t.Errorf("%s (traced, ids=%v): output not a permutation", alg.Name(), withIDs)
			}
			if withIDs {
				ids := mem.ReadAll(p.IDs)
				for i, id := range ids {
					if keys[id] != got[i] {
						t.Errorf("%s (traced): id %d detached from its key at %d", alg.Name(), id, i)
						break
					}
				}
			}
		}
	}
}

// TestSortIDsTracedArrays is the SortIDs counterpart: the ID array is
// order-sensitive, so the per-element queue path must be used.
func TestSortIDsTracedArrays(t *testing.T) {
	keys := dataset.Uniform(300, 17)
	for _, alg := range allAlgorithms() {
		env, space := tracedEnv()
		ids := space.Alloc(len(keys))
		mem.Load(ids, dataset.IDs(len(keys)))
		if mem.Reorderable(ids) {
			t.Fatal("sink-attached ids must not be reorderable")
		}
		alg.SortIDs(ids, len(keys), func(id uint32) uint32 { return keys[id] }, env)
		got := mem.ReadAll(ids)
		seen := make([]bool, len(keys))
		prev := uint32(0)
		for i, id := range got {
			if seen[id] {
				t.Errorf("%s: traced SortIDs duplicated id %d", alg.Name(), id)
				break
			}
			seen[id] = true
			if k := keys[id]; i > 0 && k < prev {
				t.Errorf("%s: traced SortIDs order violated at %d", alg.Name(), i)
				break
			} else {
				prev = k
			}
		}
	}
}
