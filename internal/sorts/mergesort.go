package sorts

import "approxsort/internal/mem"

// Mergesort is the paper's divide-and-conquer comparison sort, implemented
// bottom-up with ping-pong buffers. It issues ~n·log2(n) key writes — twice
// quicksort's — and, crucially for the paper's story (Section 3.5), the
// final merge pass touches every element, so late-pass corruption scatters
// disorder across the whole output instead of staying localized. Mergesort
// is therefore the algorithm approximate memory hurts most.
//
// The paper sizes the first-level chunks to fit the L2 cache; under the
// study's write-through cache model that choice changes cache locality but
// not the number of main-memory writes, which is the quantity every
// experiment measures, so this implementation merges from width 1.
type Mergesort struct{}

// Name implements Algorithm.
func (Mergesort) Name() string { return "Mergesort" }

// Profile implements Profiled: ≈ n·log2(n) key writes over a
// size-dependent number of merge levels.
func (Mergesort) Profile() Profile {
	return Profile{Alpha: AlphaMergesort, SortsIDs: true}
}

// Sort implements Algorithm.
func (Mergesort) Sort(p Pair, env Env) {
	p.validate()
	n := p.Len()
	if n <= 1 {
		return
	}
	src := p
	dst := Pair{Keys: env.KeySpace.Alloc(n)}
	if p.IDs != nil {
		dst.IDs = env.IDSpace.Alloc(n)
	}
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeRuns(dst, src, lo, mid, hi)
		}
		src, dst = dst, src
	}
	if src.Keys != p.Keys {
		// An odd number of passes left the result in the buffer; copy
		// it home (n extra writes, the classic ping-pong remainder).
		mem.Copy(p.Keys, src.Keys)
		if p.IDs != nil {
			mem.Copy(p.IDs, src.IDs)
		}
	}
}

// mergeRuns merges src[lo:mid) and src[mid:hi) into dst[lo:hi).
func mergeRuns(dst, src Pair, lo, mid, hi int) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		takeLeft := j >= hi
		if !takeLeft && i < mid {
			takeLeft = src.Keys.Get(i) <= src.Keys.Get(j)
		}
		var from int
		if takeLeft {
			from = i
			i++
		} else {
			from = j
			j++
		}
		dst.Keys.Set(k, src.Keys.Get(from))
		if src.IDs != nil {
			dst.IDs.Set(k, src.IDs.Get(from))
		}
	}
}

// SortIDs implements Algorithm: bottom-up mergesort over the ID array with
// comparisons through the key lookup.
func (Mergesort) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	if count <= 1 {
		return
	}
	buf := env.IDSpace.Alloc(count)
	src, dst := ids, buf
	for width := 1; width < count; width *= 2 {
		for lo := 0; lo < count; lo += 2 * width {
			mid := min(lo+width, count)
			hi := min(lo+2*width, count)
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				takeLeft := j >= hi
				if !takeLeft && i < mid {
					takeLeft = key(src.Get(i)) <= key(src.Get(j))
				}
				if takeLeft {
					dst.Set(k, src.Get(i))
					i++
				} else {
					dst.Set(k, src.Get(j))
					j++
				}
			}
		}
		src, dst = dst, src
	}
	if src != ids {
		for k := 0; k < count; k++ {
			ids.Set(k, src.Get(k))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
