package sorts

import (
	"fmt"

	"approxsort/internal/mem"
)

// LSD is least-significant-digit radix sort with queue buckets
// (Section 3.1): each pass distributes every record into 2^Bits FIFO
// queues by the current digit, then concatenates the queues back — two
// data writes per record per pass. The paper evaluates Bits of 3..6;
// 6-bit usually minimizes total write latency.
//
// LSD's distinguishing behaviour on approximate memory (Section 3.5):
// like mergesort every pass touches all records, but an error in a
// low-order bit does not disturb later passes, which only inspect their
// own digit — so LSD is far more tolerant than mergesort.
type LSD struct {
	// Bits is the digit width (bins per pass = 2^Bits). Must be 1..16.
	Bits int
}

// Name implements Algorithm.
func (l LSD) Name() string { return fmt.Sprintf("%d-bit LSD", l.Bits) }

// Sort implements Algorithm.
func (l LSD) Sort(p Pair, env Env) {
	p.validate()
	n := p.Len()
	passes, _ := digitWidth(l.Bits)
	if n <= 1 {
		return
	}
	mask := uint32(1)<<l.Bits - 1
	for pass := 0; pass < passes; pass++ {
		shift := pass * l.Bits
		keyQs := make([]*queue, 1<<l.Bits)
		var idQs []*queue
		if p.IDs != nil {
			idQs = make([]*queue, 1<<l.Bits)
		}
		for b := range keyQs {
			keyQs[b] = newQueue(env.KeySpace)
			if idQs != nil {
				idQs[b] = newQueue(env.IDSpace)
			}
		}
		for i := 0; i < n; i++ {
			k := p.Keys.Get(i)
			b := k >> shift & mask
			keyQs[b].append(k)
			if idQs != nil {
				idQs[b].append(p.IDs.Get(i))
			}
		}
		pos := 0
		for b := range keyQs {
			for j := 0; j < keyQs[b].len(); j++ {
				p.Keys.Set(pos, keyQs[b].get(j))
				if idQs != nil {
					p.IDs.Set(pos, idQs[b].get(j))
				}
				pos++
			}
		}
	}
}

// SortIDs implements Algorithm: LSD over the ID array keyed by lookup.
func (l LSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	passes, _ := digitWidth(l.Bits)
	if count <= 1 {
		return
	}
	mask := uint32(1)<<l.Bits - 1
	for pass := 0; pass < passes; pass++ {
		shift := pass * l.Bits
		qs := make([]*queue, 1<<l.Bits)
		for b := range qs {
			qs[b] = newQueue(env.IDSpace)
		}
		for i := 0; i < count; i++ {
			id := ids.Get(i)
			qs[key(id)>>shift&mask].append(id)
		}
		pos := 0
		for b := range qs {
			for j := 0; j < qs[b].len(); j++ {
				ids.Set(pos, qs[b].get(j))
				pos++
			}
		}
	}
}

// MSD is most-significant-digit radix sort with queue buckets
// (Section 3.1): it partitions the array by the top digit, concatenates
// the queues back, then recurses into each bucket with the next digit,
// falling back to insertion sort for tiny buckets. Like quicksort, each
// level confines later work to ever-smaller buckets, so an imprecise
// element's damage stays local (Section 3.5).
type MSD struct {
	// Bits is the digit width (bins per pass = 2^Bits). Must be 1..16.
	Bits int
}

// Name implements Algorithm.
func (m MSD) Name() string { return fmt.Sprintf("%d-bit MSD", m.Bits) }

// Sort implements Algorithm.
func (m MSD) Sort(p Pair, env Env) {
	p.validate()
	_, width := digitWidth(m.Bits)
	if p.Len() <= 1 {
		return
	}
	m.sortRange(p, 0, p.Len(), width-m.Bits, env)
}

func (m *MSD) sortRange(p Pair, lo, hi, shift int, env Env) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortPair(p, lo, hi)
		return
	}
	mask := uint32(1)<<m.Bits - 1
	bins := 1 << m.Bits
	keyQs := make([]*queue, bins)
	var idQs []*queue
	if p.IDs != nil {
		idQs = make([]*queue, bins)
	}
	for b := range keyQs {
		keyQs[b] = newQueue(env.KeySpace)
		if idQs != nil {
			idQs[b] = newQueue(env.IDSpace)
		}
	}
	for i := lo; i < hi; i++ {
		k := p.Keys.Get(i)
		b := k >> shift & mask
		keyQs[b].append(k)
		if idQs != nil {
			idQs[b].append(p.IDs.Get(i))
		}
	}
	pos := lo
	starts := make([]int, bins+1)
	for b := range keyQs {
		starts[b] = pos
		for j := 0; j < keyQs[b].len(); j++ {
			p.Keys.Set(pos, keyQs[b].get(j))
			if idQs != nil {
				p.IDs.Set(pos, idQs[b].get(j))
			}
			pos++
		}
	}
	starts[bins] = pos
	for b := 0; b < bins; b++ {
		m.sortRange(p, starts[b], starts[b+1], shift-m.Bits, env)
	}
}

// SortIDs implements Algorithm: MSD over the ID array keyed by lookup.
func (m MSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	_, width := digitWidth(m.Bits)
	if count <= 1 {
		return
	}
	m.sortIDRange(ids, 0, count, width-m.Bits, key, env)
}

func (m *MSD) sortIDRange(ids mem.Words, lo, hi, shift int, key func(uint32) uint32, env Env) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortIDs(ids, lo, hi, key)
		return
	}
	mask := uint32(1)<<m.Bits - 1
	bins := 1 << m.Bits
	qs := make([]*queue, bins)
	for b := range qs {
		qs[b] = newQueue(env.IDSpace)
	}
	for i := lo; i < hi; i++ {
		id := ids.Get(i)
		qs[key(id)>>shift&mask].append(id)
	}
	pos := lo
	starts := make([]int, bins+1)
	for b := range qs {
		starts[b] = pos
		for j := 0; j < qs[b].len(); j++ {
			ids.Set(pos, qs[b].get(j))
			pos++
		}
	}
	starts[bins] = pos
	for b := 0; b < bins; b++ {
		m.sortIDRange(ids, starts[b], starts[b+1], shift-m.Bits, key, env)
	}
}

// Standard returns the paper's algorithm roster: quicksort, mergesort, and
// LSD/MSD at the given digit widths (Section 3.1 evaluates 3..6 bits;
// passing no widths selects 6-bit, the paper's default for "LSD"/"MSD").
func Standard(bits ...int) []Algorithm {
	if len(bits) == 0 {
		bits = []int{6}
	}
	algs := []Algorithm{Quicksort{}, Mergesort{}}
	for _, b := range bits {
		algs = append(algs, LSD{Bits: b})
	}
	for _, b := range bits {
		algs = append(algs, MSD{Bits: b})
	}
	return algs
}
