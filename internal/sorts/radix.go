package sorts

import (
	"fmt"

	"approxsort/internal/mem"
)

// LSD is least-significant-digit radix sort with queue buckets
// (Section 3.1): each pass distributes every record into 2^Bits FIFO
// queues by the current digit, then concatenates the queues back — two
// data writes per record per pass. The paper evaluates Bits of 3..6;
// 6-bit usually minimizes total write latency.
//
// LSD's distinguishing behaviour on approximate memory (Section 3.5):
// like mergesort every pass touches all records, but an error in a
// low-order bit does not disturb later passes, which only inspect their
// own digit — so LSD is far more tolerant than mergesort.
type LSD struct {
	// Bits is the digit width (bins per pass = 2^Bits). Must be 1..16.
	Bits int
}

// Name implements Algorithm.
func (l LSD) Name() string { return fmt.Sprintf("%d-bit LSD", l.Bits) }

// Profile implements Profiled. LSD's write count is an exact structural
// identity for n ≥ 2: two key writes per element per pass (distribution
// append plus concatenation write-back), identical on the queue and bulk
// paths.
func (l LSD) Profile() Profile {
	passes, _ := digitWidth(l.Bits)
	return Profile{
		Alpha:       AlphaRadix(l.Bits),
		Passes:      passes,
		ExactWrites: true,
		Reorderable: true,
		SortsIDs:    true,
	}
}

// radixPassBulk is one distribution + concatenation pass over p[lo:hi)
// rewritten as four bulk slice transfers. It is access-equivalent to the
// queue-bucket pass: the same 2(hi-lo) reads and 2(hi-lo) writes are
// charged per array, and every write presents the identical value
// sequence to the backend — the staging writes replay the distribution
// appends (input order) and the final writes replay the concatenation
// (bucket order) — so the device noise stream, and with it every stored
// value and pulse count, is consumed bit-identically. Callers must gate
// on bulkEligible. tmp supplies the staging arrays (device memory, so
// staging traffic is charged like the queue chunks it replaces); only
// its first hi-lo words are used. On return starts[b] holds the
// absolute start of bucket b, with starts[bins] == hi.
//
//memlint:hotpath
func radixPassBulk(p, tmp Pair, lo, hi int, shift uint, sc *Scratch, starts []int) {
	n := hi - lo
	bins := len(starts) - 1
	mask := uint32(bins - 1)
	vals, stored, out, pos, counts := sc.buffers(n, bins)
	mem.GetSlice(p.Keys, lo, vals)
	for b := range counts {
		counts[b] = 0
	}
	for _, k := range vals {
		counts[int(k>>shift&mask)]++
	}
	off := 0
	for b := 0; b < bins; b++ {
		c := counts[b]
		starts[b] = lo + off
		counts[b] = off
		off += c
	}
	starts[bins] = lo + off
	for i, k := range vals {
		b := int(k >> shift & mask)
		pos[i] = counts[b]
		counts[b]++
	}
	// Stage through device memory: writes draw noise in input order
	// (the queue appends), the read-back surfaces any staging
	// corruption (the queue gets), and the permuted write-back draws in
	// bucket order (the concatenation).
	mem.SetSlice(tmp.Keys, 0, vals)
	mem.GetSlice(tmp.Keys, 0, stored)
	for i, v := range stored {
		out[pos[i]] = v
	}
	mem.SetSlice(p.Keys, lo, out)
	if p.IDs != nil {
		mem.GetSlice(p.IDs, lo, vals)
		mem.SetSlice(tmp.IDs, 0, vals)
		mem.GetSlice(tmp.IDs, 0, stored)
		for i, v := range stored {
			out[pos[i]] = v
		}
		mem.SetSlice(p.IDs, lo, out)
	}
}

// radixPassIDsBulk is radixPassBulk for a bare ID array bucketed through
// the key lookup. key is called exactly once per element, in index
// order — the same count and order as the queue path's distribution
// loop — because lookups are themselves charged reads.
//
//memlint:hotpath
func radixPassIDsBulk(ids, tmp mem.Words, lo, hi int, shift uint, key func(uint32) uint32, sc *Scratch, starts []int) {
	n := hi - lo
	bins := len(starts) - 1
	mask := uint32(bins - 1)
	vals, stored, out, pos, counts := sc.buffers(n, bins)
	mem.GetSlice(ids, lo, vals)
	for b := range counts {
		counts[b] = 0
	}
	for i, id := range vals {
		b := int(key(id) >> shift & mask) //nolint:hotpath // per-element key lookup is the SortIDs contract (each lookup is a charged read)
		pos[i] = b
		counts[b]++
	}
	off := 0
	for b := 0; b < bins; b++ {
		c := counts[b]
		starts[b] = lo + off
		counts[b] = off
		off += c
	}
	starts[bins] = lo + off
	for i := range vals {
		b := pos[i]
		pos[i] = counts[b]
		counts[b]++
	}
	mem.SetSlice(tmp, 0, vals)
	mem.GetSlice(tmp, 0, stored)
	for i, v := range stored {
		out[pos[i]] = v
	}
	mem.SetSlice(ids, lo, out)
}

// Sort implements Algorithm.
func (l LSD) Sort(p Pair, env Env) {
	p.validate()
	n := p.Len()
	passes, _ := digitWidth(l.Bits)
	if n <= 1 {
		return
	}
	if bulkEligible(p) {
		sc := env.scratch()
		tmp := Pair{Keys: env.KeySpace.Alloc(n)}
		if p.IDs != nil {
			tmp.IDs = env.IDSpace.Alloc(n)
		}
		starts := make([]int, (1<<l.Bits)+1)
		for pass := 0; pass < passes; pass++ {
			radixPassBulk(p, tmp, 0, n, uint(pass*l.Bits), sc, starts)
		}
		return
	}
	mask := uint32(1)<<l.Bits - 1
	for pass := 0; pass < passes; pass++ {
		shift := pass * l.Bits
		keyQs := make([]*queue, 1<<l.Bits)
		var idQs []*queue
		if p.IDs != nil {
			idQs = make([]*queue, 1<<l.Bits)
		}
		for b := range keyQs {
			keyQs[b] = newQueue(env.KeySpace)
			if idQs != nil {
				idQs[b] = newQueue(env.IDSpace)
			}
		}
		for i := 0; i < n; i++ {
			k := p.Keys.Get(i)
			b := k >> shift & mask
			keyQs[b].append(k)
			if idQs != nil {
				idQs[b].append(p.IDs.Get(i))
			}
		}
		pos := 0
		for b := range keyQs {
			for j := 0; j < keyQs[b].len(); j++ {
				p.Keys.Set(pos, keyQs[b].get(j))
				if idQs != nil {
					p.IDs.Set(pos, idQs[b].get(j))
				}
				pos++
			}
		}
	}
}

// SortIDs implements Algorithm: LSD over the ID array keyed by lookup.
// The bulk path additionally assumes key's own reads are reorderable
// whenever ids' are; the refine stage upholds this because REMID and
// Key0 live in the same precise space, so they are traced (and thus
// gated) together.
func (l LSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	passes, _ := digitWidth(l.Bits)
	if count <= 1 {
		return
	}
	if mem.Reorderable(ids) {
		sc := env.scratch()
		tmp := env.IDSpace.Alloc(count)
		starts := make([]int, (1<<l.Bits)+1)
		for pass := 0; pass < passes; pass++ {
			radixPassIDsBulk(ids, tmp, 0, count, uint(pass*l.Bits), key, sc, starts)
		}
		return
	}
	mask := uint32(1)<<l.Bits - 1
	for pass := 0; pass < passes; pass++ {
		shift := pass * l.Bits
		qs := make([]*queue, 1<<l.Bits)
		for b := range qs {
			qs[b] = newQueue(env.IDSpace)
		}
		for i := 0; i < count; i++ {
			id := ids.Get(i)
			qs[key(id)>>shift&mask].append(id)
		}
		pos := 0
		for b := range qs {
			for j := 0; j < qs[b].len(); j++ {
				ids.Set(pos, qs[b].get(j))
				pos++
			}
		}
	}
}

// MSD is most-significant-digit radix sort with queue buckets
// (Section 3.1): it partitions the array by the top digit, concatenates
// the queues back, then recurses into each bucket with the next digit,
// falling back to insertion sort for tiny buckets. Like quicksort, each
// level confines later work to ever-smaller buckets, so an imprecise
// element's damage stays local (Section 3.5).
type MSD struct {
	// Bits is the digit width (bins per pass = 2^Bits). Must be 1..16.
	Bits int
}

// Name implements Algorithm.
func (m MSD) Name() string { return fmt.Sprintf("%d-bit MSD", m.Bits) }

// Profile implements Profiled. MSD shares LSD's analytic α (the paper's
// working approximation) but its actual write count is data-dependent:
// the recursion stops early on small buckets and hands them to insertion
// sort, so ExactWrites stays false.
func (m MSD) Profile() Profile {
	return Profile{
		Alpha:       AlphaRadix(m.Bits),
		Reorderable: true,
		SortsIDs:    true,
	}
}

// Sort implements Algorithm.
func (m MSD) Sort(p Pair, env Env) {
	p.validate()
	_, width := digitWidth(m.Bits)
	if p.Len() <= 1 {
		return
	}
	if bulkEligible(p) {
		ctx := &msdBulk{sc: env.scratch(), bins: 1 << m.Bits}
		ctx.tmp = Pair{Keys: env.KeySpace.Alloc(p.Len())}
		if p.IDs != nil {
			ctx.tmp.IDs = env.IDSpace.Alloc(p.Len())
		}
		m.sortRangeBulk(p, 0, p.Len(), width-m.Bits, 0, ctx)
		return
	}
	m.sortRange(p, 0, p.Len(), width-m.Bits, env)
}

// msdBulk carries the bulk path's per-sort state down the recursion: the
// staging arrays (sized for the full input; each range uses a prefix),
// the plain-memory scratch, and per-depth bucket-boundary buffers.
// Same-depth siblings reuse one starts buffer — a parent has finished
// reading its own before any sibling at the same depth runs — so the
// recursion allocates per depth, not per node.
type msdBulk struct {
	tmp    Pair
	sc     *Scratch
	bins   int
	starts [][]int
}

func (c *msdBulk) startsAt(depth int) []int {
	for len(c.starts) <= depth {
		c.starts = append(c.starts, make([]int, c.bins+1))
	}
	return c.starts[depth]
}

func (m *MSD) sortRangeBulk(p Pair, lo, hi, shift, depth int, ctx *msdBulk) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortPair(p, lo, hi)
		return
	}
	starts := ctx.startsAt(depth)
	radixPassBulk(p, ctx.tmp, lo, hi, uint(shift), ctx.sc, starts)
	for b := 0; b < ctx.bins; b++ {
		m.sortRangeBulk(p, starts[b], starts[b+1], shift-m.Bits, depth+1, ctx)
	}
}

func (m *MSD) sortRange(p Pair, lo, hi, shift int, env Env) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortPair(p, lo, hi)
		return
	}
	mask := uint32(1)<<m.Bits - 1
	bins := 1 << m.Bits
	keyQs := make([]*queue, bins)
	var idQs []*queue
	if p.IDs != nil {
		idQs = make([]*queue, bins)
	}
	for b := range keyQs {
		keyQs[b] = newQueue(env.KeySpace)
		if idQs != nil {
			idQs[b] = newQueue(env.IDSpace)
		}
	}
	for i := lo; i < hi; i++ {
		k := p.Keys.Get(i)
		b := k >> shift & mask
		keyQs[b].append(k)
		if idQs != nil {
			idQs[b].append(p.IDs.Get(i))
		}
	}
	pos := lo
	starts := make([]int, bins+1)
	for b := range keyQs {
		starts[b] = pos
		for j := 0; j < keyQs[b].len(); j++ {
			p.Keys.Set(pos, keyQs[b].get(j))
			if idQs != nil {
				p.IDs.Set(pos, idQs[b].get(j))
			}
			pos++
		}
	}
	starts[bins] = pos
	for b := 0; b < bins; b++ {
		m.sortRange(p, starts[b], starts[b+1], shift-m.Bits, env)
	}
}

// SortIDs implements Algorithm: MSD over the ID array keyed by lookup.
// The bulk path carries the same key-reorderability assumption as
// LSD.SortIDs.
func (m MSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	_, width := digitWidth(m.Bits)
	if count <= 1 {
		return
	}
	if mem.Reorderable(ids) {
		ctx := &msdIDBulk{sc: env.scratch(), bins: 1 << m.Bits, tmp: env.IDSpace.Alloc(count), key: key}
		m.sortIDRangeBulk(ids, 0, count, width-m.Bits, 0, ctx)
		return
	}
	m.sortIDRange(ids, 0, count, width-m.Bits, key, env)
}

// msdIDBulk is msdBulk for the bare-ID recursion.
type msdIDBulk struct {
	tmp    mem.Words
	sc     *Scratch
	bins   int
	key    func(uint32) uint32
	starts [][]int
}

func (c *msdIDBulk) startsAt(depth int) []int {
	for len(c.starts) <= depth {
		c.starts = append(c.starts, make([]int, c.bins+1))
	}
	return c.starts[depth]
}

func (m *MSD) sortIDRangeBulk(ids mem.Words, lo, hi, shift, depth int, ctx *msdIDBulk) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortIDs(ids, lo, hi, ctx.key)
		return
	}
	starts := ctx.startsAt(depth)
	radixPassIDsBulk(ids, ctx.tmp, lo, hi, uint(shift), ctx.key, ctx.sc, starts)
	for b := 0; b < ctx.bins; b++ {
		m.sortIDRangeBulk(ids, starts[b], starts[b+1], shift-m.Bits, depth+1, ctx)
	}
}

func (m *MSD) sortIDRange(ids mem.Words, lo, hi, shift int, key func(uint32) uint32, env Env) {
	n := hi - lo
	if n <= 1 || shift < 0 {
		return
	}
	if n <= insertionThreshold {
		insertionSortIDs(ids, lo, hi, key)
		return
	}
	mask := uint32(1)<<m.Bits - 1
	bins := 1 << m.Bits
	qs := make([]*queue, bins)
	for b := range qs {
		qs[b] = newQueue(env.IDSpace)
	}
	for i := lo; i < hi; i++ {
		id := ids.Get(i)
		qs[key(id)>>shift&mask].append(id)
	}
	pos := lo
	starts := make([]int, bins+1)
	for b := range qs {
		starts[b] = pos
		for j := 0; j < qs[b].len(); j++ {
			ids.Set(pos, qs[b].get(j))
			pos++
		}
	}
	starts[bins] = pos
	for b := 0; b < bins; b++ {
		m.sortIDRange(ids, starts[b], starts[b+1], shift-m.Bits, key, env)
	}
}

// Standard returns the paper's algorithm roster: quicksort, mergesort, and
// LSD/MSD at the given digit widths (Section 3.1 evaluates 3..6 bits;
// passing no widths selects 6-bit, the paper's default for "LSD"/"MSD").
func Standard(bits ...int) []Algorithm {
	if len(bits) == 0 {
		bits = []int{6}
	}
	algs := []Algorithm{Quicksort{}, Mergesort{}}
	for _, b := range bits {
		algs = append(algs, LSD{Bits: b})
	}
	for _, b := range bits {
		algs = append(algs, MSD{Bits: b})
	}
	return algs
}
