package sorts_test

// Allocation pins for the sort hot paths (DESIGN.md §13): a sort's
// allocation count must be a small constant — staging arrays, scratch
// growth, recursion bookkeeping — never proportional to n. A
// per-element allocation anywhere in an inner loop moves these counts
// into the thousands at n=20000, so the bounds below fail loudly.

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/sorts"
)

func sortAllocs(t *testing.T, alg sorts.Algorithm, n int) float64 {
	t.Helper()
	approx := mem.NewApproxSpaceAt(0.055, 7)
	precise := mem.NewPreciseSpace()
	p := sorts.Pair{Keys: approx.Alloc(n), IDs: precise.Alloc(n)}
	mem.Load(p.Keys, dataset.Uniform(n, 7))
	mem.Load(p.IDs, dataset.IDs(n))
	env := sorts.Env{KeySpace: approx, IDSpace: precise, Scratch: &sorts.Scratch{}}
	alg.Sort(p, env) // warm the scratch buffers
	return testing.AllocsPerRun(2, func() {
		alg.Sort(p, env)
	})
}

// TestSortAllocsConstant bounds the whole-sort allocation count with a
// warm scratch: the bulk radix paths stage through reused buffers, so
// only the per-sort device staging arrays and O(depth) bookkeeping
// remain.
func TestSortAllocsConstant(t *testing.T) {
	const n = 20000
	for _, alg := range []sorts.Algorithm{
		sorts.MSD{Bits: 6}, sorts.LSD{Bits: 6}, sorts.Quicksort{},
	} {
		if got := sortAllocs(t, alg, n); got > 64 {
			t.Errorf("%s: %v allocs per sort of n=%d, want a small constant (<= 64)", alg.Name(), got, n)
		}
	}
}

// TestSortAllocsDoNotScale pins the per-element property directly: the
// allocation count at 4x the input size must not grow with n beyond the
// handful of staging-array headers.
func TestSortAllocsDoNotScale(t *testing.T) {
	alg := sorts.MSD{Bits: 6}
	small := sortAllocs(t, alg, 5000)
	large := sortAllocs(t, alg, 20000)
	if large > small+16 {
		t.Errorf("allocs grew with n: %v at n=5000 vs %v at n=20000", small, large)
	}
}
