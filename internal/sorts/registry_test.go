package sorts

import (
	"errors"
	"strings"
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"lsd", "mergesort", "msd", "onesweep-lsd", "quicksort"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	_, err := New("bogosort", 0)
	var unk *UnknownAlgorithmError
	if !errors.As(err, &unk) {
		t.Fatalf("New(bogosort) error = %T %v, want *UnknownAlgorithmError", err, err)
	}
	if unk.Name != "bogosort" {
		t.Errorf("error carries name %q", unk.Name)
	}
	// The message must let a caller self-correct: every registered name is
	// listed, in sorted order.
	msg := err.Error()
	if !strings.Contains(msg, `"bogosort"`) {
		t.Errorf("message %q does not echo the unknown name", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("message %q does not list %q", msg, name)
		}
	}
	if _, err := Lookup("bogosort"); !errors.As(err, &unk) {
		t.Errorf("Lookup error = %T, want *UnknownAlgorithmError", err)
	}
}

func TestNewAppliesDefaultBits(t *testing.T) {
	cases := []struct {
		name string
		bits int
		want string
	}{
		{"quicksort", 0, "Quicksort"},
		{"quicksort", 9, "Quicksort"}, // bits ignored for comparison sorts
		{"mergesort", 0, "Mergesort"},
		{"lsd", 0, "6-bit LSD"},
		{"lsd", 3, "3-bit LSD"},
		{"msd", 0, "6-bit MSD"},
		{"onesweep-lsd", 0, "8-bit OneSweep"},
		{"onesweep-lsd", 6, "6-bit OneSweep"},
	}
	for _, tc := range cases {
		alg, err := New(tc.name, tc.bits)
		if err != nil {
			t.Fatalf("New(%s, %d): %v", tc.name, tc.bits, err)
		}
		if alg.Name() != tc.want {
			t.Errorf("New(%s, %d).Name() = %q, want %q", tc.name, tc.bits, alg.Name(), tc.want)
		}
	}
}

func TestRoster(t *testing.T) {
	algs, err := Roster([]string{"quicksort", "onesweep-lsd"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(algs) != 2 || algs[0].Name() != "Quicksort" || algs[1].Name() != "8-bit OneSweep" {
		t.Errorf("Roster = %v", algs)
	}
	if _, err := Roster([]string{"quicksort", "nope"}, 0); err == nil {
		t.Error("Roster accepted an unknown name")
	}
}

func TestAutoCandidates(t *testing.T) {
	cands := AutoCandidates()
	want := []string{"lsd", "mergesort", "msd", "onesweep-lsd", "quicksort"}
	if len(cands) != len(want) {
		t.Fatalf("%d candidates, want %d", len(cands), len(want))
	}
	for i, c := range cands {
		// Sorted-name order is the planner's tie-break contract.
		if c.Name != want[i] {
			t.Errorf("candidate %d = %q, want %q", i, c.Name, want[i])
		}
		if c.Alg == nil {
			t.Fatalf("candidate %q has nil algorithm", c.Name)
		}
		if prof, ok := ProfileOf(c.Alg); !ok || prof.Alpha == nil {
			t.Errorf("auto candidate %q has no analytic α — the planner cannot cost it", c.Name)
		}
	}
}

func TestProfiles(t *testing.T) {
	const n = 1 << 12 // log2 = 12
	cases := []struct {
		alg         Algorithm
		perElem     float64
		exact       bool
		reorderable bool
	}{
		{Quicksort{}, 6, false, false},   // n·log2(n)/2
		{Mergesort{}, 12, false, false},  // n·log2(n)
		{LSD{Bits: 6}, 12, true, true},   // 2·6 passes
		{LSD{Bits: 8}, 8, true, true},    // 2·4 passes
		{MSD{Bits: 6}, 12, false, true},  // expectation only (insertion leaves)
		{OneSweepLSD{Bits: 8}, 8, true, true},  // 2·4 passes, even → in place
		{OneSweepLSD{Bits: 5}, 15, true, true}, // 2·7 passes + odd-count copy home
		{OneSweepLSD{Bits: 16}, 4, true, true}, // 2·2 passes
	}
	for _, tc := range cases {
		prof, ok := ProfileOf(tc.alg)
		if !ok {
			t.Fatalf("%s: no profile", tc.alg.Name())
		}
		if got := prof.WritesPerElement(n); got != tc.perElem {
			t.Errorf("%s: writes/element = %v, want %v", tc.alg.Name(), got, tc.perElem)
		}
		if prof.ExactWrites != tc.exact {
			t.Errorf("%s: ExactWrites = %v, want %v", tc.alg.Name(), prof.ExactWrites, tc.exact)
		}
		if prof.Reorderable != tc.reorderable {
			t.Errorf("%s: Reorderable = %v, want %v", tc.alg.Name(), prof.Reorderable, tc.reorderable)
		}
		if !prof.SortsIDs {
			t.Errorf("%s: SortsIDs = false", tc.alg.Name())
		}
	}
}

// approxRun sorts keys on approximate memory at a pinned (T, seed) and
// returns the stored output plus the key-space accounting — the full
// observable surface of a sort.
func approxRun(alg Algorithm, keys []uint32, t float64, seed uint64) ([]uint32, mem.Stats) {
	space := mem.NewApproxSpaceAt(t, seed)
	shadow := mem.NewPreciseSpace()
	p := Pair{Keys: space.Alloc(len(keys)), IDs: shadow.Alloc(len(keys))}
	mem.Load(p.Keys, keys)
	mem.Load(p.IDs, dataset.IDs(len(keys)))
	space.ResetStats()
	alg.Sort(p, Env{KeySpace: space, IDSpace: shadow, R: rng.New(seed ^ 0x9e3779b9)})
	return mem.PeekAll(p.Keys), space.Stats()
}

// TestRegistryDispatchParity pins the refactor's bit-identity contract:
// an algorithm resolved through the registry must reproduce the direct
// construction byte-for-byte — stored output AND accounting — at pinned
// seeds on approximate memory. Any registry-layer indirection that
// perturbed construction (a changed default width, an extra wrapper
// touching memory) fails here before it can drift a golden row.
func TestRegistryDispatchParity(t *testing.T) {
	cases := []struct {
		name   string
		bits   int
		direct Algorithm
	}{
		{"quicksort", 0, Quicksort{}},
		{"mergesort", 0, Mergesort{}},
		{"lsd", 6, LSD{Bits: 6}},
		{"lsd", 0, LSD{Bits: 6}},
		{"msd", 6, MSD{Bits: 6}},
		{"msd", 0, MSD{Bits: 6}},
		{"onesweep-lsd", 0, OneSweepLSD{Bits: 8}},
	}
	keys := dataset.Uniform(3000, 1729)
	for _, tc := range cases {
		reg, err := New(tc.name, tc.bits)
		if err != nil {
			t.Fatalf("New(%s, %d): %v", tc.name, tc.bits, err)
		}
		for _, T := range []float64{0.055, 0.105} {
			const seed = 42
			wantOut, wantStats := approxRun(tc.direct, keys, T, seed)
			gotOut, gotStats := approxRun(reg, keys, T, seed)
			if gotStats != wantStats {
				t.Errorf("%s/%d T=%v: registry stats %+v != direct %+v",
					tc.name, tc.bits, T, gotStats, wantStats)
			}
			for i := range wantOut {
				if gotOut[i] != wantOut[i] {
					t.Errorf("%s/%d T=%v: output diverges at %d: %d != %d",
						tc.name, tc.bits, T, i, gotOut[i], wantOut[i])
					break
				}
			}
		}
	}
}
