// Package sorts implements the paper's four sorting algorithms —
// randomized quicksort, bottom-up mergesort, and LSD/MSD radix sort with
// queue buckets (Section 3.1) — over instrumented hybrid-memory arrays.
//
// Every algorithm sorts a Pair: a key array (typically living in
// approximate memory) and an optional parallel record-ID array (always in
// precise memory). Each algorithm additionally knows how to sort a bare ID
// array by a key-lookup function (SortIDs), which is how the refine stage's
// Step 2 sorts REMID "using the sorting algorithm of the approx stage"
// without writing any key data (Section 4.2).
//
// Algorithms read keys through Words.Get, so on approximate memory they
// observe — and propagate — corrupted values, exactly as the paper's
// trace-driven study does. All temporaries (merge buffers, bucket queues)
// are allocated from the Env's spaces so their writes are charged to the
// correct memory kind.
package sorts

import (
	"fmt"

	"approxsort/internal/mem"
	"approxsort/internal/rng"
)

// Pair is a dataset view: parallel key and record-ID arrays. IDs may be nil
// for key-only studies (Section 3 does not touch the payload).
type Pair struct {
	Keys mem.Words
	IDs  mem.Words
}

// Len returns the number of records.
func (p Pair) Len() int { return p.Keys.Len() }

// validate panics when IDs is present but mismatched; silently accepting a
// shorter payload array would corrupt record identity.
func (p Pair) validate() {
	if p.IDs != nil && p.IDs.Len() != p.Keys.Len() {
		panic(fmt.Sprintf("sorts: key/ID length mismatch %d != %d", p.Keys.Len(), p.IDs.Len()))
	}
}

// swap exchanges records i and j (two reads and two writes per array).
func (p Pair) swap(i, j int) {
	ki, kj := p.Keys.Get(i), p.Keys.Get(j)
	p.Keys.Set(i, kj)
	p.Keys.Set(j, ki)
	if p.IDs != nil {
		ii, ij := p.IDs.Get(i), p.IDs.Get(j)
		p.IDs.Set(i, ij)
		p.IDs.Set(j, ii)
	}
}

// Env supplies an algorithm's execution context: where temporaries live and
// where pivot randomness comes from.
type Env struct {
	// KeySpace allocates key temporaries (merge buffers, key bucket
	// queues). It must be the space the Pair's key array lives in so
	// temporaries inherit its precision.
	KeySpace mem.Space
	// IDSpace allocates record-ID temporaries. IDs always live in
	// precise memory in the paper's design.
	IDSpace mem.Space
	// R provides pivot randomness for quicksort. If nil a fixed-seed
	// stream is used.
	R *rng.Source
	// Scratch, when non-nil, supplies reusable plain-memory staging
	// buffers for the bulk radix paths. A run context (core.Run, the
	// sweep drivers) sets it once so consecutive sorts — the approx
	// stage and the refine stage's SortIDs — share one set of buffers
	// instead of reallocating per call. Nil is always safe: each sort
	// then stages through a private Scratch.
	Scratch *Scratch
}

func (e Env) rng() *rng.Source {
	if e.R != nil {
		return e.R
	}
	return rng.New(0x5eed)
}

func (e Env) scratch() *Scratch {
	if e.Scratch != nil {
		return e.Scratch
	}
	return &Scratch{}
}

// Scratch holds the plain-memory staging buffers behind the bulk radix
// pass: the value snapshot, the post-model read-back, the permuted
// output, the per-element destination positions, and the bucket
// histogram. Buffers grow to the largest range staged and are reused
// across passes, recursion levels, and — when shared through
// Env.Scratch — across whole sorts, so the steady-state hot path
// allocates nothing. None of this memory is simulated device memory:
// every charged access still goes through the mem.Words arrays.
type Scratch struct {
	vals, stored, out []uint32
	pos               []int
	counts            []int
}

// buffers returns the staging slices sized for an n-element range with
// the given bucket count, growing the backing arrays if needed.
func (s *Scratch) buffers(n, bins int) (vals, stored, out []uint32, pos, counts []int) {
	if cap(s.vals) < n {
		s.vals = make([]uint32, n)
		s.stored = make([]uint32, n)
		s.out = make([]uint32, n)
		s.pos = make([]int, n)
	}
	if cap(s.counts) < bins {
		s.counts = make([]int, bins)
	}
	return s.vals[:n], s.stored[:n], s.out[:n], s.pos[:n], s.counts[:bins]
}

// bulkEligible reports whether the pair's arrays admit the bulk radix
// rewrite: every array must commute under read/write decoupling
// (mem.Reorderable), which excludes traced arrays — the queue path's
// per-access event stream is part of the golden contract — and backends
// whose reads consume the noise stream.
func bulkEligible(p Pair) bool {
	if !mem.Reorderable(p.Keys) {
		return false
	}
	return p.IDs == nil || mem.Reorderable(p.IDs)
}

// Algorithm is one of the paper's sorting algorithms.
type Algorithm interface {
	// Name identifies the algorithm in reports ("Quicksort", "6-bit LSD", ...).
	Name() string
	// Sort sorts p in place by non-decreasing key.
	Sort(p Pair, env Env)
	// SortIDs reorders ids[0:count] so key(ids[0]) <= ... <=
	// key(ids[count-1]), writing only the ID array. key must be a pure
	// lookup (it is called multiple times per element).
	SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env)
}

// insertionThreshold is the segment size below which MSD radix falls back
// to insertion sort, the usual cutoff for queue-bucket implementations.
const insertionThreshold = 16

// insertionSortPair sorts p[lo:hi) by insertion; used for small MSD
// buckets. Write cost is one key (and one ID) write per element shift.
func insertionSortPair(p Pair, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		k := p.Keys.Get(i)
		var id uint32
		if p.IDs != nil {
			id = p.IDs.Get(i)
		}
		j := i
		for j > lo {
			kj := p.Keys.Get(j - 1)
			if kj <= k {
				break
			}
			p.Keys.Set(j, kj)
			if p.IDs != nil {
				p.IDs.Set(j, p.IDs.Get(j-1))
			}
			j--
		}
		if j != i {
			p.Keys.Set(j, k)
			if p.IDs != nil {
				p.IDs.Set(j, id)
			}
		}
	}
}

// insertionSortIDs sorts ids[lo:hi) by key lookup.
func insertionSortIDs(ids mem.Words, lo, hi int, key func(uint32) uint32) {
	for i := lo + 1; i < hi; i++ {
		id := ids.Get(i)
		k := key(id)
		j := i
		for j > lo {
			idj := ids.Get(j - 1)
			if key(idj) <= k {
				break
			}
			ids.Set(j, idj)
			j--
		}
		if j != i {
			ids.Set(j, id)
		}
	}
}

// queue is a growable FIFO of words allocated chunk-wise from a Space. It
// is the "queues as buckets" structure of the paper's radix sorts: each
// append is one data write in the owning space.
type queue struct {
	space  mem.Space
	chunks []mem.Words
	n      int
}

// queueChunkWords is the allocation granularity of bucket queues (one 4 KB
// page of 32-bit words).
const queueChunkWords = 1024

func newQueue(space mem.Space) *queue { return &queue{space: space} }

func (q *queue) append(v uint32) {
	chunk, off := q.n/queueChunkWords, q.n%queueChunkWords
	if chunk == len(q.chunks) {
		q.chunks = append(q.chunks, q.space.Alloc(queueChunkWords))
	}
	q.chunks[chunk].Set(off, v)
	q.n++
}

func (q *queue) get(i int) uint32 {
	return q.chunks[i/queueChunkWords].Get(i % queueChunkWords)
}

func (q *queue) len() int { return q.n }

// digitWidth returns the number of radix passes and the padded bit width
// for b-bit digits over 32-bit keys.
func digitWidth(bits int) (passes, width int) {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("sorts: radix digit width %d out of range [1,16]", bits))
	}
	passes = (32 + bits - 1) / bits
	return passes, passes * bits
}
