package sorts

import (
	"approxsort/internal/mem"
	"approxsort/internal/rng"
)

// Quicksort is the paper's randomized quicksort: Hoare partitioning around
// a uniformly random pivot (randomization reduces the probability of the
// O(n²) worst case, Section 3.1). On average it issues ~n·log2(n)/2 key
// writes, the lowest of the studied algorithms, which is part of why it
// tolerates approximate memory comparatively well (Section 3.5).
//
// Partition scans carry explicit bounds guards: on approximate memory a
// swap can corrupt the values it just wrote, which would let an unguarded
// Hoare scan run past the segment.
type Quicksort struct{}

// Name implements Algorithm.
func (Quicksort) Name() string { return "Quicksort" }

// Profile implements Profiled: ≈ n·log2(n)/2 expected key writes, no
// fixed pass structure, swap-based (no bulk path).
func (Quicksort) Profile() Profile {
	return Profile{Alpha: AlphaQuicksort, SortsIDs: true}
}

// Sort implements Algorithm.
func (Quicksort) Sort(p Pair, env Env) {
	p.validate()
	quicksortPair(p, 0, p.Len(), env.rng())
}

func quicksortPair(p Pair, lo, hi int, r *rng.Source) {
	// Recurse on the smaller half and iterate on the larger to bound
	// stack depth even under adversarial duplicate patterns.
	for hi-lo > 1 {
		mid := hoarePartition(p, lo, hi, r)
		if mid-lo < hi-mid {
			quicksortPair(p, lo, mid, r)
			lo = mid
		} else {
			quicksortPair(p, mid, hi, r)
			hi = mid
		}
	}
}

// hoarePartition partitions p[lo:hi) around a randomly chosen pivot value
// and returns a split point strictly inside (lo, hi), so both sides shrink.
// Hoare's scheme swaps only genuinely out-of-place pairs — the fewest
// writes — and splits duplicate runs evenly.
func hoarePartition(p Pair, lo, hi int, r *rng.Source) int {
	if pi := lo + r.Intn(hi-lo); pi != lo {
		p.swap(lo, pi)
	}
	pivot := p.Keys.Get(lo)
	// i starts one before the pivot so the pivot itself is the left
	// sentinel (A[lo] >= pivot stops the first scan).
	i, j := lo-1, hi
	for {
		for {
			i++
			if i >= hi || p.Keys.Get(i) >= pivot {
				break
			}
		}
		for {
			j--
			if j <= lo || p.Keys.Get(j) <= pivot {
				break
			}
		}
		if i >= j {
			break
		}
		p.swap(i, j)
	}
	switch {
	case j <= lo:
		return lo + 1
	case j >= hi-1:
		return hi - 1
	default:
		return j + 1
	}
}

// SortIDs implements Algorithm: randomized quicksort over the ID array with
// comparisons through the key lookup; only IDs are written.
func (Quicksort) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	quicksortIDs(ids, 0, count, key, env.rng())
}

func quicksortIDs(ids mem.Words, lo, hi int, key func(uint32) uint32, r *rng.Source) {
	for hi-lo > 1 {
		mid := hoarePartitionIDs(ids, lo, hi, key, r)
		if mid-lo < hi-mid {
			quicksortIDs(ids, lo, mid, key, r)
			lo = mid
		} else {
			quicksortIDs(ids, mid, hi, key, r)
			hi = mid
		}
	}
}

func hoarePartitionIDs(ids mem.Words, lo, hi int, key func(uint32) uint32, r *rng.Source) int {
	if pi := lo + r.Intn(hi-lo); pi != lo {
		vl, vp := ids.Get(lo), ids.Get(pi)
		ids.Set(lo, vp)
		ids.Set(pi, vl)
	}
	pivot := key(ids.Get(lo))
	i, j := lo-1, hi
	for {
		for {
			i++
			if i >= hi || key(ids.Get(i)) >= pivot {
				break
			}
		}
		for {
			j--
			if j <= lo || key(ids.Get(j)) <= pivot {
				break
			}
		}
		if i >= j {
			break
		}
		vi, vj := ids.Get(i), ids.Get(j)
		ids.Set(i, vj)
		ids.Set(j, vi)
	}
	switch {
	case j <= lo:
		return lo + 1
	case j >= hi-1:
		return hi - 1
	default:
		return j + 1
	}
}
