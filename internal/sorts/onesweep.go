package sorts

import (
	"fmt"

	"approxsort/internal/mem"
)

// OneSweepLSD is the write-combining radix variant after Wassenberg &
// Sanders ("Faster Radix Sort via Virtual Memory and Write-Combining") and
// the OneSweep idea (SNIPPETS.md §3): wide digits cut the pass count —
// 8-bit digits need 4 passes over 32-bit keys where the paper's 6-bit
// queue-bucket LSD needs 6 — and per-bucket software write-combining
// buffers make the wide scatter practical by turning 2^Bits random
// single-word writes into sequential burst flushes.
//
// Each digit pass is one fused read+count sweep followed by one buffered
// permute pass: the sweep reads every key once (staging it host-side) and
// builds the pass's histogram at zero extra charged cost; the permute
// appends each record to its bucket's write-combining buffer (one charged
// write in the key space) and flushes full buffers as one sequential burst
// into the ping-pong destination (one charged read plus one charged write
// per record). The classic OneSweep trick of counting every digit in a
// single up-front pass is unsound on approximate memory — each scatter
// rewrites, and may corrupt, the digits the next pass would have counted —
// so the count fuses into each pass's own read sweep instead.
//
// Charged cost per element per pass: 2 reads + 2 writes, the same shape as
// queue-bucket LSD — the write saving comes entirely from the wider digit
// (α = 2·ceil(32/Bits)·n: 8n at 8 bits vs 12n at 6), which is exactly the
// Wassenberg–Sanders argument for why write-combining pays. All buffers
// (the ping-pong destination and the write-combining block) are allocated
// from the Env's spaces, so their traffic is charged to — and corrupted
// by — the correct memory kind: a key flushed through the buffer passes
// the device's write noise twice.
type OneSweepLSD struct {
	// Bits is the digit width (bins per pass = 2^Bits). Must be 1..16;
	// the registry default is 8 (4 passes, an even count, so the
	// ping-pong ends in place).
	Bits int
}

// wcWords is the write-combining buffer capacity per bucket, one 256-byte
// burst of 32-bit words — the cache-line-multiple granularity the
// technique flushes at.
const wcWords = 64

// Name implements Algorithm.
func (o OneSweepLSD) Name() string { return fmt.Sprintf("%d-bit OneSweep", o.Bits) }

// Profile implements Profiled. The write count is an exact structural
// identity: 2 key writes per element per pass, plus the n-word copy home
// when the pass count is odd.
func (o OneSweepLSD) Profile() Profile {
	passes, _ := digitWidth(o.Bits)
	perElem := 2 * passes
	if passes%2 == 1 {
		perElem++
	}
	return Profile{
		Alpha: func(n int) float64 {
			if n < 2 {
				return 0
			}
			return float64(perElem * n)
		},
		Passes:      passes,
		ExactWrites: true,
		Reorderable: true,
		SortsIDs:    true,
	}
}

// wcState is the per-sort write-combining machinery: the device-resident
// buffer block (bins × wcWords words), the host-side fill levels and
// output cursors, and the staging slice a flush reads back through.
type wcState struct {
	buf    mem.Words
	fill   []int
	cursor []int
	burst  []uint32
}

func newWCState(space mem.Space, bins int) *wcState {
	return &wcState{
		buf:    space.Alloc(bins * wcWords),
		fill:   make([]int, bins),
		cursor: make([]int, bins),
		burst:  make([]uint32, wcWords),
	}
}

// append places v in bucket b's buffer (one charged write), flushing the
// buffer to dst when it fills.
func (w *wcState) append(dst mem.Words, b int, v uint32) {
	w.buf.Set(b*wcWords+w.fill[b], v)
	w.fill[b]++
	if w.fill[b] == wcWords {
		w.flush(dst, b)
	}
}

// flush drains bucket b's buffer into dst as one sequential burst: the
// buffered words are read back through the device (surfacing any
// corruption the buffer write introduced) and written at the bucket's
// output cursor.
func (w *wcState) flush(dst mem.Words, b int) {
	k := w.fill[b]
	if k == 0 {
		return
	}
	burst := w.burst[:k]
	mem.GetSlice(w.buf, b*wcWords, burst)
	mem.SetSlice(dst, w.cursor[b], burst)
	w.cursor[b] += k
	w.fill[b] = 0
}

// reset prepares the state for a pass with the given absolute bucket
// starts.
func (w *wcState) reset(starts []int) {
	for b := range w.fill {
		w.fill[b] = 0
		w.cursor[b] = starts[b]
	}
}

// Sort implements Algorithm.
func (o OneSweepLSD) Sort(p Pair, env Env) {
	p.validate()
	n := p.Len()
	passes, _ := digitWidth(o.Bits)
	if n <= 1 {
		return
	}
	bins := 1 << o.Bits
	mask := uint32(bins - 1)
	sc := env.scratch()
	vals, idvals, _, _, counts := sc.buffers(n, bins)

	tmp := Pair{Keys: env.KeySpace.Alloc(n)}
	wcKeys := newWCState(env.KeySpace, bins)
	var wcIDs *wcState
	if p.IDs != nil {
		tmp.IDs = env.IDSpace.Alloc(n)
		wcIDs = newWCState(env.IDSpace, bins)
	}
	starts := make([]int, bins)

	src, dst := p, tmp
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * o.Bits)
		// Fused read+count sweep: one charged read per key; the
		// histogram is host arithmetic on the staged values.
		mem.GetSlice(src.Keys, 0, vals)
		if src.IDs != nil {
			mem.GetSlice(src.IDs, 0, idvals)
		}
		for b := range counts {
			counts[b] = 0
		}
		for _, k := range vals {
			counts[int(k>>shift&mask)]++
		}
		off := 0
		for b := 0; b < bins; b++ {
			starts[b] = off
			off += counts[b]
		}
		wcKeys.reset(starts)
		if wcIDs != nil {
			wcIDs.reset(starts)
		}
		// Buffered permute: route by the staged digit, write through the
		// bucket's write-combining buffer, burst-flush into dst.
		for i, k := range vals {
			b := int(k >> shift & mask)
			wcKeys.append(dst.Keys, b, k)
			if wcIDs != nil {
				wcIDs.append(dst.IDs, b, idvals[i])
			}
		}
		for b := 0; b < bins; b++ {
			wcKeys.flush(dst.Keys, b)
			if wcIDs != nil {
				wcIDs.flush(dst.IDs, b)
			}
		}
		src, dst = dst, src
	}
	if src.Keys != p.Keys {
		// An odd pass count left the result in the ping-pong buffer;
		// copy it home (n extra writes, as in mergesort).
		mem.Copy(p.Keys, src.Keys)
		if p.IDs != nil {
			mem.Copy(p.IDs, src.IDs)
		}
	}
}

// SortIDs implements Algorithm: the same fused-sweep write-combining
// passes over the bare ID array, bucketed through the key lookup. key is
// called exactly once per element per pass — each lookup is a charged
// read, matching the SortIDs contract of the queue-bucket radix sorts.
func (o OneSweepLSD) SortIDs(ids mem.Words, count int, key func(uint32) uint32, env Env) {
	passes, _ := digitWidth(o.Bits)
	if count <= 1 {
		return
	}
	bins := 1 << o.Bits
	mask := uint32(bins - 1)
	sc := env.scratch()
	vals, _, _, pos, counts := sc.buffers(count, bins)

	tmp := env.IDSpace.Alloc(count)
	wc := newWCState(env.IDSpace, bins)
	starts := make([]int, bins)

	src, dst := ids, tmp
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * o.Bits)
		mem.GetSlice(src, 0, vals)
		for b := range counts {
			counts[b] = 0
		}
		for i, id := range vals {
			b := int(key(id) >> shift & mask)
			pos[i] = b
			counts[b]++
		}
		off := 0
		for b := 0; b < bins; b++ {
			starts[b] = off
			off += counts[b]
		}
		wc.reset(starts)
		for i, id := range vals {
			wc.append(dst, pos[i], id)
		}
		for b := 0; b < bins; b++ {
			wc.flush(dst, b)
		}
		src, dst = dst, src
	}
	if src != ids {
		// Odd pass count: copy the sorted prefix home. ids may be longer
		// than count (the SortIDs contract sorts a prefix), so this stages
		// exactly the count window rather than mem.Copy-ing whole arrays.
		mem.GetSlice(src, 0, vals)
		mem.SetSlice(ids, 0, vals)
	}
}
