package sorts

import (
	"testing"

	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
)

// Package-level benchmarks: each algorithm over precise and approximate
// memory at a fixed size, so the instrumented-array overhead and the
// relative algorithm costs are visible in `go test -bench`.

const benchN = 50000

func benchPrecise(b *testing.B, alg Algorithm) {
	keys := dataset.Uniform(benchN, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		space := mem.NewPreciseSpace()
		p := Pair{Keys: space.Alloc(benchN), IDs: space.Alloc(benchN)}
		mem.Load(p.Keys, keys)
		mem.Load(p.IDs, dataset.IDs(benchN))
		env := Env{KeySpace: space, IDSpace: space, R: rng.New(2)}
		b.StartTimer()
		alg.Sort(p, env)
	}
	b.ReportMetric(float64(benchN), "records")
}

func benchApprox(b *testing.B, alg Algorithm) {
	keys := dataset.Uniform(benchN, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		approx := mem.NewApproxSpaceAt(0.055, uint64(i)+3)
		precise := mem.NewPreciseSpace()
		p := Pair{Keys: approx.Alloc(benchN), IDs: precise.Alloc(benchN)}
		mem.Load(p.Keys, keys)
		mem.Load(p.IDs, dataset.IDs(benchN))
		env := Env{KeySpace: approx, IDSpace: precise, R: rng.New(2)}
		b.StartTimer()
		alg.Sort(p, env)
	}
	b.ReportMetric(float64(benchN), "records")
}

func BenchmarkQuicksortPrecise(b *testing.B) { benchPrecise(b, Quicksort{}) }
func BenchmarkQuicksortApprox(b *testing.B)  { benchApprox(b, Quicksort{}) }
func BenchmarkMergesortPrecise(b *testing.B) { benchPrecise(b, Mergesort{}) }
func BenchmarkMergesortApprox(b *testing.B)  { benchApprox(b, Mergesort{}) }
func BenchmarkLSD6Precise(b *testing.B)      { benchPrecise(b, LSD{Bits: 6}) }
func BenchmarkLSD6Approx(b *testing.B)       { benchApprox(b, LSD{Bits: 6}) }
func BenchmarkMSD6Precise(b *testing.B)      { benchPrecise(b, MSD{Bits: 6}) }
func BenchmarkMSD6Approx(b *testing.B)       { benchApprox(b, MSD{Bits: 6}) }
