package verify

import (
	"encoding/binary"
	"fmt"
	"io"

	"approxsort/internal/core"
	"approxsort/internal/extsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/sortedness"
)

// Auditor adapts this package to extsort.Verifier so an external sort can
// audit every run it forms against the backend's identity set before the
// run is spilled. A streaming job that installs an Auditor and then
// passes CheckExtsortStats (totals) and a StreamChecker (output) has had
// every record of its pipeline checked: per-run invariants at formation
// time, merge structure at output time, accounting reconciliation at the
// end.
type Auditor struct {
	// ID is the approximate backend's identity set
	// (memmodel.Backend.Identities); the zero value audits only the
	// backend-independent invariants.
	ID memmodel.Identities
}

var _ extsort.Verifier = Auditor{}

// VerifyHybridRun audits one approx-refine run via CheckRefineRun.
func (a Auditor) VerifyHybridRun(input []uint32, res core.Result) error {
	return CheckRefineRun(input, res, a.ID).Err()
}

// VerifyPartsRun audits one refine-at-merge run via CheckRunParts.
func (a Auditor) VerifyPartsRun(input []uint32, parts core.Parts) error {
	return CheckRunParts(input, parts, a.ID).Err()
}

// VerifyPreciseRun audits one precise-only run via CheckOutput.
func (a Auditor) VerifyPreciseRun(input, output []uint32) error {
	return CheckOutput(input, output).Err()
}

// CheckRunParts audits the output of core.RunParts: the split LIS~/REM
// pair that refine-at-merge formation spills instead of a merged run. The
// parts must individually be sorted, jointly partition the input (IDs a
// permutation of [0, n), every key the original record's key), and the
// four executed stages' accounting must reconcile exactly as in a full
// run — with the merge stage empty, because deferring those 2n + Rem~
// writes into the external merge is the variant's whole point.
func CheckRunParts(input []uint32, parts core.Parts, id memmodel.Identities) *Report {
	r := parts.Report
	n := len(input)
	rep := &Report{N: n}

	rep.check(r != nil, "result-shape", "Parts.Report is nil")
	if r == nil {
		return rep
	}
	rep.check(r.N == n, "result-shape", "Report.N = %d, input has %d keys", r.N, n)
	rep.check(len(parts.LisKeys) == len(parts.LisIDs), "result-shape",
		"LIS~ has %d keys but %d IDs", len(parts.LisKeys), len(parts.LisIDs))
	rep.check(len(parts.RemKeys) == len(parts.RemIDs), "result-shape",
		"REM has %d keys but %d IDs", len(parts.RemKeys), len(parts.RemIDs))
	if len(parts.LisKeys) != len(parts.LisIDs) || len(parts.RemKeys) != len(parts.RemIDs) {
		return rep
	}
	rep.check(len(parts.LisKeys)+len(parts.RemKeys) == n, "parts-split",
		"LIS~ (%d) + REM (%d) does not partition the %d-key input",
		len(parts.LisKeys), len(parts.RemKeys), n)
	rep.check(r.RemTilde == len(parts.RemKeys), "parts-split",
		"Report.RemTilde = %d but REM holds %d keys", r.RemTilde, len(parts.RemKeys))

	// Both parts must arrive sorted: the LIS~ by the find-step invariant,
	// the REM because refine step 2 sorted it. The external merge trusts
	// this order, so a violation here would corrupt the merged output.
	rep.check(sortedness.IsSorted(parts.LisKeys), "parts-unsorted",
		"LIS~ keys are not non-decreasing")
	rep.check(sortedness.IsSorted(parts.RemKeys), "parts-unsorted",
		"REM keys are not non-decreasing")
	rep.check(r.Sorted == (sortedness.IsSorted(parts.LisKeys) && sortedness.IsSorted(parts.RemKeys)),
		"sorted-flag", "Report.Sorted = %v disagrees with the parts", r.Sorted)

	// Record identity across the split: the two ID sets are disjoint,
	// cover [0, n), and each part's keys are the original records'.
	if len(parts.LisKeys)+len(parts.RemKeys) == n {
		seen := make([]bool, n)
		ok := true
		for _, half := range []struct {
			name string
			keys []uint32
			ids  []uint32
		}{
			{"LIS~", parts.LisKeys, parts.LisIDs},
			{"REM", parts.RemKeys, parts.RemIDs},
		} {
			for i, rid := range half.ids {
				if int(rid) >= n || seen[rid] {
					rep.check(false, "id-not-permutation",
						"%s IDs[%d] = %d is out of range or repeated", half.name, i, rid)
					ok = false
					break
				}
				seen[rid] = true
				if input[rid] != half.keys[i] {
					rep.check(false, "id-key-mismatch",
						"%s Keys[%d] = %d but input[IDs[%d]=%d] = %d",
						half.name, i, half.keys[i], i, rid, input[rid])
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			rep.check(true, "id-not-permutation", "")
		}
	}

	checkRem(rep, r)

	// Find step writes as in a full run; the merge stage must be empty —
	// its 2n + Rem~ writes are the external merge's to pay.
	wantFind := r.RemTilde
	if r.ExactLIS {
		wantFind = 2*n + r.RemTilde
	}
	if n >= 2 {
		rep.check(r.RefineFind.Precise.Writes == wantFind, "find-writes",
			"find stage wrote %d precise words, want %d (exactLIS=%v)",
			r.RefineFind.Precise.Writes, wantFind, r.ExactLIS)
	}
	rep.check(r.RefineMerge.Precise.Writes == 0 && r.RefineMerge.Precise.Reads == 0 &&
		r.RefineMerge.Approx.Writes == 0 && r.RefineMerge.Approx.Reads == 0,
		"parts-merge-not-empty",
		"RunParts executed merge traffic: %+v", r.RefineMerge)

	// The refine stages never touch approximate memory (Section 4.2).
	for _, st := range []struct {
		name string
		b    core.StageBreakdown
	}{
		{"find", r.RefineFind}, {"sort", r.RefineSort},
	} {
		rep.check(st.b.Approx.Reads == 0 && st.b.Approx.Writes == 0,
			"refine-touches-approx",
			"refine %s stage performed %d approximate reads and %d writes",
			st.name, st.b.Approx.Reads, st.b.Approx.Writes)
	}

	checkStages(rep, r, id)
	return rep
}

// StreamChecker audits a merged output stream in flight: it wraps the
// destination io.Writer, decodes the little-endian words as they pass,
// and tracks order and count so the caller never needs to buffer the
// (out-of-core sized) output to verify it. Monotonicity plus conservation
// against the job's input count is exactly the pair of properties the
// k-way merge must preserve; permutation identity is already pinned
// per-run by the Auditor before the runs are spilled.
type StreamChecker struct {
	w       io.Writer
	prev    uint32
	started bool
	records int64
	frag    [4]byte // partial trailing word across Write boundaries
	nfrag   int
	err     error
}

// NewStreamChecker wraps w. A nil w audits without forwarding.
func NewStreamChecker(w io.Writer) *StreamChecker {
	if w == nil {
		w = io.Discard
	}
	return &StreamChecker{w: w}
}

// Write forwards p to the underlying writer after auditing it. An order
// violation fails the Write immediately — downstream gets no bytes the
// checker has rejected.
func (c *StreamChecker) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	b := p
	if c.nfrag > 0 {
		need := 4 - c.nfrag
		if len(b) < need {
			copy(c.frag[c.nfrag:], b)
			c.nfrag += len(b)
			return c.w.Write(p)
		}
		copy(c.frag[c.nfrag:], b[:need])
		b = b[need:]
		c.nfrag = 0
		if err := c.record(binary.LittleEndian.Uint32(c.frag[:])); err != nil {
			return 0, err
		}
	}
	for ; len(b) >= 4; b = b[4:] {
		if err := c.record(binary.LittleEndian.Uint32(b)); err != nil {
			return 0, err
		}
	}
	if len(b) > 0 {
		copy(c.frag[:], b)
		c.nfrag = len(b)
	}
	return c.w.Write(p)
}

func (c *StreamChecker) record(k uint32) error {
	if c.started && k < c.prev {
		c.err = fmt.Errorf("verify: stream not sorted at record %d: %d after %d", c.records, k, c.prev)
		return c.err
	}
	c.prev = k
	c.started = true
	c.records++
	return nil
}

// Records returns the number of complete records seen so far.
func (c *StreamChecker) Records() int64 { return c.records }

// Finish validates end-of-stream: no dangling partial word and exactly
// expected records delivered.
func (c *StreamChecker) Finish(expected int64) error {
	if c.err != nil {
		return c.err
	}
	if c.nfrag != 0 {
		return fmt.Errorf("verify: stream ends mid-record (%d trailing bytes)", c.nfrag)
	}
	if c.records != expected {
		return fmt.Errorf("verify: stream carried %d records, expected %d", c.records, expected)
	}
	return nil
}

// CheckExtsortStats reconciles an external sort's aggregate Stats against
// its own per-run ledger — the streaming analogue of checkStages. Every
// job total must be the fold of its runs (records, Rem~, formation write
// latency), the merge traffic must match the cost model's passes×records
// structure at the precise device constants, and the disk ledger must be
// internally consistent. A streaming job reports Verified:true only after
// its runs, its output stream, and these totals have all passed.
func CheckExtsortStats(stats extsort.Stats) *Report {
	rep := &Report{N: int(stats.Records)}

	rep.check(stats.Runs == len(stats.PerRun), "extsort-ledger",
		"Stats.Runs = %d but PerRun has %d entries", stats.Runs, len(stats.PerRun))

	var recs int64
	var rem int
	var nanos float64
	for i, ri := range stats.PerRun {
		rep.check(ri.Records > 0, "extsort-ledger", "run %d has %d records", i, ri.Records)
		rep.check(ri.RemTilde >= 0 && ri.RemTilde <= ri.Records, "rem-range",
			"run %d Rem~ = %d out of [0, %d]", i, ri.RemTilde, ri.Records)
		rep.check(ri.Hybrid == stats.Hybrid, "extsort-ledger",
			"run %d hybrid=%v disagrees with job hybrid=%v", i, ri.Hybrid, stats.Hybrid)
		rep.check(ri.Hybrid || ri.RemTilde == 0, "extsort-ledger",
			"precise run %d reports Rem~ = %d", i, ri.RemTilde)
		recs += int64(ri.Records)
		rem += ri.RemTilde
		nanos += ri.WriteNanos
	}
	rep.check(recs == stats.Records, "extsort-ledger",
		"per-run records sum to %d, job total is %d", recs, stats.Records)
	rep.check(rem == stats.RemTildeTotal, "extsort-ledger",
		"per-run Rem~ sums to %d, job total is %d", rem, stats.RemTildeTotal)
	rep.check(closeEnough(nanos, stats.HybridWriteNanos), "extsort-ledger",
		"per-run write latency sums to %g, job total is %g", nanos, stats.HybridWriteNanos)

	// Merge accounting: every full pass streams every record through the
	// precise staging window, and the refine-at-merge fragment collapse
	// stages exactly its ledgered records on top, so writes are exactly
	// passes×records + collapsed and the latency is the precise
	// per-write constant times that.
	rep.check(stats.CollapsedRecords >= 0 && (stats.CollapsedRecords == 0 || stats.RefineAtMerge),
		"merge-accounting", "fragment collapse staged %d records outside refine-at-merge",
		stats.CollapsedRecords)
	rep.check((stats.FragmentCollapses == 0) == (stats.CollapsedRecords == 0),
		"merge-accounting", "FragmentCollapses = %d disagrees with CollapsedRecords = %d",
		stats.FragmentCollapses, stats.CollapsedRecords)
	wantMerge := int64(stats.MergePasses)*stats.Records + stats.CollapsedRecords
	rep.check(stats.MergeWrites == wantMerge, "merge-accounting",
		"MergeWrites = %d, want passes×records + collapsed = %d×%d + %d = %d",
		stats.MergeWrites, stats.MergePasses, stats.Records, stats.CollapsedRecords, wantMerge)
	rep.check(closeEnough(stats.MergeWriteNanos, float64(stats.MergeWrites)*mlc.PreciseWriteNanos),
		"merge-accounting", "MergeWriteNanos %g != MergeWrites %d × %g",
		stats.MergeWriteNanos, stats.MergeWrites, mlc.PreciseWriteNanos)

	// Disk ledger: the high-water mark cannot exceed the cumulative
	// volume, and any spilled sort wrote at least its own records once.
	rep.check(stats.DiskHighWater <= stats.DiskBytesWritten, "disk-ledger",
		"DiskHighWater %d exceeds DiskBytesWritten %d",
		stats.DiskHighWater, stats.DiskBytesWritten)
	if stats.Runs > 0 {
		rep.check(stats.DiskBytesWritten >= 4*stats.Records, "disk-ledger",
			"DiskBytesWritten %d below one pass over %d records",
			stats.DiskBytesWritten, stats.Records)
	}
	rep.check(!stats.Hybrid || stats.HybridWriteNanos > 0 || stats.Records == 0,
		"extsort-ledger", "hybrid job charged no formation writes")
	return rep
}
