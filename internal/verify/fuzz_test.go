package verify

// Native Go fuzz targets routing arbitrary inputs through the invariant
// checker. CI runs each for a short smoke budget (-fuzztime 30s);
// discovered interesting inputs live under testdata/fuzz/ and replay as
// ordinary subtests in every `go test` run.

import (
	"encoding/binary"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/sorts"
)

// fuzzMaxKeys caps the decoded input size so each fuzz iteration stays
// milliseconds-scale and the 30s smoke budget explores many shapes.
const fuzzMaxKeys = 1024

func keysFromBytes(data []byte) []uint32 {
	n := len(data) / 4
	if n > fuzzMaxKeys {
		n = fuzzMaxKeys
	}
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return keys
}

// fuzzAlg decodes an algorithm from the selector's low bits and a
// half-width T from the next bits, covering the paper's roster × the
// Table 3 grid.
func fuzzAlg(sel byte) (sorts.Algorithm, float64) {
	var alg sorts.Algorithm
	switch sel % 4 {
	case 0:
		alg = sorts.Quicksort{}
	case 1:
		alg = sorts.Mergesort{}
	case 2:
		alg = sorts.LSD{Bits: 4}
	default:
		alg = sorts.MSD{Bits: 6}
	}
	ts := []float64{0.03, 0.055, 0.1}
	return alg, ts[int(sel/4)%len(ts)]
}

// seedBytes returns a small deterministic key blob for the seed corpus.
func seedBytes(n int, mul uint32) []byte {
	b := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(i)*mul+1)
	}
	return b
}

// FuzzApproxRefine drives the full approx-refine pipeline over arbitrary
// keys and checks every invariant on the result.
func FuzzApproxRefine(f *testing.F) {
	f.Add(uint64(1), byte(0), seedBytes(64, 2654435761))
	f.Add(uint64(7), byte(3), seedBytes(3, 0)) // duplicate-only keys
	f.Add(uint64(9), byte(10), []byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, sel byte, data []byte) {
		keys := keysFromBytes(data)
		if len(keys) == 0 {
			t.Skip()
		}
		alg, tv := fuzzAlg(sel)
		res, err := core.Run(keys, core.Config{
			Algorithm:         alg,
			T:                 tv,
			Seed:              seed,
			MeasureSortedness: len(keys) <= 512,
		})
		if err != nil {
			t.Fatalf("core.Run(%s, T=%g, n=%d): %v", alg.Name(), tv, len(keys), err)
		}
		if rep := Check(keys, res); !rep.OK() {
			t.Fatalf("%s T=%g n=%d seed=%d: %v", alg.Name(), tv, len(keys), seed, rep.Violations)
		}
	})
}

// FuzzPlanner drives the Section 4.3 switch decision over arbitrary keys
// and pilot sizes; every verdict must be finite and in range (service
// inputs hit this path on every auto-mode request).
func FuzzPlanner(f *testing.F) {
	f.Add(uint64(1), byte(0), uint16(0), seedBytes(64, 2654435761))
	f.Add(uint64(3), byte(5), uint16(4096), seedBytes(2, 1))
	f.Add(uint64(5), byte(2), uint16(1), seedBytes(100, 0))
	f.Fuzz(func(t *testing.T, seed uint64, sel byte, pilot uint16, data []byte) {
		keys := keysFromBytes(data)
		if len(keys) == 0 {
			t.Skip()
		}
		alg, tv := fuzzAlg(sel)
		plan, err := core.Planner{
			Config:    core.Config{Algorithm: alg, T: tv, Seed: seed},
			PilotSize: int(pilot),
		}.Plan(keys)
		if err != nil {
			t.Fatalf("Plan(%s, T=%g, n=%d, pilot=%d): %v", alg.Name(), tv, len(keys), pilot, err)
		}
		if rep := CheckPlan(len(keys), plan); !rep.OK() {
			t.Fatalf("%s T=%g n=%d pilot=%d: %+v: %v", alg.Name(), tv, len(keys), pilot, plan, rep.Violations)
		}
	})
}

// FuzzRefineBound focuses the refine stage's write-budget identities,
// toggling between the heuristic and the exact-LIS ablation so both find
// paths stay under guard.
func FuzzRefineBound(f *testing.F) {
	f.Add(uint64(1), byte(0), seedBytes(64, 2654435761))
	f.Add(uint64(2), byte(0x83), seedBytes(64, 3))    // exact-LIS path
	f.Add(uint64(4), byte(0x80), seedBytes(5, 1<<30)) // exact-LIS, coarse keys
	f.Fuzz(func(t *testing.T, seed uint64, sel byte, data []byte) {
		keys := keysFromBytes(data)
		if len(keys) == 0 {
			t.Skip()
		}
		alg, tv := fuzzAlg(sel & 0x7f)
		res, err := core.Run(keys, core.Config{
			Algorithm:         alg,
			T:                 tv,
			Seed:              seed,
			ExactLIS:          sel&0x80 != 0,
			MeasureSortedness: true,
			SkipBaseline:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep := Check(keys, res); !rep.OK() {
			t.Fatalf("exactLIS=%v: %v", sel&0x80 != 0, rep.Violations)
		}
		// Belt and braces on the Equation 4 refine budget itself.
		r := res.Report
		if !r.ExactLIS {
			data := r.RefineFind.Precise.Writes + r.RefineMerge.Precise.Writes
			if want := 2*r.N + 2*r.RemTilde; len(keys) >= 2 && data != want {
				t.Fatalf("refine data writes %d, want %d", data, want)
			}
		}
	})
}
