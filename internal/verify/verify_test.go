package verify

import (
	"strings"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/sorts"
	"approxsort/internal/spintronic"
)

// hasCode reports whether the report contains a violation with the code.
func hasCode(rep *Report, code string) bool {
	for _, v := range rep.Violations {
		if v.Code == code {
			return true
		}
	}
	return false
}

func runAndCheck(t *testing.T, keys []uint32, cfg core.Config) (*Report, core.Result) {
	t.Helper()
	res, err := core.Run(keys, cfg)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return Check(keys, res), res
}

func TestCheckPassesCleanRuns(t *testing.T) {
	keys := dataset.Uniform(3000, 7)
	for _, alg := range sorts.Standard(4, 6) {
		for _, tv := range []float64{0.03, 0.055, 0.1} {
			cfg := core.Config{Algorithm: alg, T: tv, Seed: 11, MeasureSortedness: true}
			rep, _ := runAndCheck(t, keys, cfg)
			if err := rep.Err(); err != nil {
				t.Errorf("%s T=%g: %v", alg.Name(), tv, err)
			}
			if rep.Checked == 0 {
				t.Errorf("%s T=%g: no checks evaluated", alg.Name(), tv)
			}
		}
	}
}

func TestCheckPassesExactLIS(t *testing.T) {
	keys := dataset.Uniform(2000, 3)
	cfg := core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 5,
		ExactLIS: true, MeasureSortedness: true}
	rep, res := runAndCheck(t, keys, cfg)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// The ablation's remainder is exact, so it must equal the measured
	// post-approx Rem — a stronger relation than the ≤ the checker uses.
	if res.Report.RemTilde != res.Report.PostApproxRem {
		t.Fatalf("exact-LIS Rem %d != measured Rem %d",
			res.Report.RemTilde, res.Report.PostApproxRem)
	}
}

func TestCheckPassesSpintronicSpace(t *testing.T) {
	keys := dataset.Uniform(1500, 9)
	cfg := spintronic.Presets()[0]
	rep, _ := runAndCheck(t, keys, core.Config{
		Algorithm: sorts.Quicksort{},
		NewSpace:  func(s uint64) core.Space { return spintronic.NewSpace(cfg, s) },
		Seed:      13,
	})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPassesSkewedInputs(t *testing.T) {
	for name, keys := range map[string][]uint32{
		"sorted":      dataset.Sorted(1000),
		"reverse":     dataset.Reverse(1000),
		"fewdistinct": dataset.FewDistinct(1000, 4, 2),
		"tiny":        {42},
		"pair":        {2, 1},
	} {
		rep, _ := runAndCheck(t, keys,
			core.Config{Algorithm: sorts.LSD{Bits: 4}, T: 0.055, Seed: 21})
		if err := rep.Err(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCheckFiresOnTamperedOutput(t *testing.T) {
	keys := dataset.Uniform(500, 17)
	res, err := core.Run(keys, core.Config{Algorithm: sorts.Quicksort{}, T: 0.055, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("swapped keys", func(t *testing.T) {
		bad := res
		bad.Keys = append([]uint32(nil), res.Keys...)
		bad.Keys[10], bad.Keys[400] = bad.Keys[400], bad.Keys[10]
		rep := Check(keys, bad)
		for _, code := range []string{"output-unsorted", "oracle-diff", "sorted-flag"} {
			if !hasCode(rep, code) {
				t.Errorf("missing violation %q in %v", code, rep.Violations)
			}
		}
	})

	t.Run("value corrupted", func(t *testing.T) {
		bad := res
		bad.Keys = append([]uint32(nil), res.Keys...)
		bad.Keys[250]++ // may stay sorted, but breaks the multiset
		rep := Check(keys, bad)
		if !hasCode(rep, "not-permutation") && !hasCode(rep, "oracle-diff") {
			t.Errorf("corrupted value not caught: %v", rep.Violations)
		}
	})

	t.Run("duplicated id", func(t *testing.T) {
		bad := res
		bad.IDs = append([]uint32(nil), res.IDs...)
		bad.IDs[3] = bad.IDs[4]
		rep := Check(keys, bad)
		if !hasCode(rep, "id-not-permutation") {
			t.Errorf("duplicate ID not caught: %v", rep.Violations)
		}
	})

	t.Run("rem overcount", func(t *testing.T) {
		badReport := *res.Report
		badReport.RemTilde++ // breaks the find/merge write identities
		bad := core.Result{Report: &badReport, Keys: res.Keys, IDs: res.IDs}
		rep := Check(keys, bad)
		if !hasCode(rep, "find-writes") || !hasCode(rep, "merge-writes") {
			t.Errorf("Rem~ accounting drift not caught: %v", rep.Violations)
		}
	})

	t.Run("approx traffic in refine", func(t *testing.T) {
		badReport := *res.Report
		badReport.RefineMerge.Approx.Writes = 7
		bad := core.Result{Report: &badReport, Keys: res.Keys, IDs: res.IDs}
		rep := Check(keys, bad)
		if !hasCode(rep, "refine-touches-approx") {
			t.Errorf("approx traffic in refine not caught: %v", rep.Violations)
		}
	})

	t.Run("energy drift", func(t *testing.T) {
		badReport := *res.Report
		badReport.RefineMerge.Precise.WriteEnergy *= 1.5
		bad := core.Result{Report: &badReport, Keys: res.Keys, IDs: res.IDs}
		rep := Check(keys, bad)
		if !hasCode(rep, "precise-accounting") {
			t.Errorf("energy drift not caught: %v", rep.Violations)
		}
	})
}

func TestCheckOutput(t *testing.T) {
	input := []uint32{5, 3, 1, 4, 2}
	if rep := CheckOutput(input, []uint32{1, 2, 3, 4, 5}); !rep.OK() {
		t.Fatalf("clean output flagged: %v", rep.Violations)
	}
	rep := CheckOutput(input, []uint32{1, 2, 4, 3, 5})
	if rep.OK() {
		t.Fatal("unsorted output passed")
	}
	if rep := CheckOutput(input, []uint32{1, 2, 3}); !hasCode(rep, "result-shape") {
		t.Fatalf("length mismatch not caught: %v", rep.Violations)
	}
}

func TestCheckPlan(t *testing.T) {
	keys := dataset.Uniform(5000, 23)
	plan, err := core.Planner{
		Config:    core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.055, Seed: 2},
		PilotSize: 512,
	}.Plan(keys)
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckPlan(len(keys), plan); !rep.OK() {
		t.Fatalf("clean plan flagged: %v", rep.Violations)
	}

	bad := plan
	bad.PredictedRem = len(keys) + 1
	if rep := CheckPlan(len(keys), bad); !hasCode(rep, "plan-range") {
		t.Fatal("out-of-range PredictedRem not caught")
	}
}

func TestReportErr(t *testing.T) {
	rep := &Report{}
	if rep.Err() != nil {
		t.Fatal("empty report should have nil Err")
	}
	rep.check(false, "a", "first")
	rep.check(false, "b", "second")
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "a: first") ||
		!strings.Contains(err.Error(), "1 more") {
		t.Fatalf("unexpected summary: %v", err)
	}
}

func TestDiffKeys(t *testing.T) {
	if d := DiffKeys([]uint32{1, 2, 3}, []uint32{1, 2, 3}); d != nil {
		t.Fatalf("equal slices diffed: %v", d)
	}
	d := DiffKeys([]uint32{1, 2, 3, 4}, []uint32{1, 9, 3, 8})
	if d == nil || d.Index != 1 || d.Want != 2 || d.Got != 9 || d.Mismatches != 2 {
		t.Fatalf("unexpected diff: %+v", d)
	}
	if d := DiffKeys([]uint32{1, 2}, []uint32{1}); d == nil || d.Mismatches != 1 {
		t.Fatalf("length mismatch not counted: %+v", d)
	}
}
