package verify

// Mutation smoke test: prove the invariant checker actually fires.
//
// The test replicates core.Run's five-stage pipeline with copies of the
// refine-stage find and merge (the code under guard), runs it once with
// the faithful merge — which must pass Check, establishing that the copy
// is a true replica and the pass is not vacuous — and once with a
// deliberate off-by-one seeded into the merge's REM stream initialization
// (the classic regression the golden gate exists to catch), which must
// produce violations.

import (
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/mem"
	"approxsort/internal/rng"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

type mergeFunc func(key0, id, remID mem.Words, remCount int, precise mem.Space, finalKey, finalID mem.Words)

// findREMCopy is a verbatim copy of core's refine Step 1 heuristic
// (Listing 1). Kept in sync by TestMutationPipelineFaithful: if the copy
// drifted from the original, its report would fail the checker's
// write-count identities.
func findREMCopy(key0, id, remID mem.Words) int {
	n := id.Len()
	if n < 2 {
		return 0
	}
	rem := 0
	tail := key0.Get(int(id.Get(0)))
	curID := id.Get(1)
	curKey := key0.Get(int(curID))
	for i := 1; i < n-1; i++ {
		nextID := id.Get(i + 1)
		nextKey := key0.Get(int(nextID))
		if curKey >= tail && curKey <= nextKey {
			tail = curKey
		} else {
			remID.Set(rem, curID)
			rem++
		}
		curID, curKey = nextID, nextKey
	}
	if curKey < tail {
		remID.Set(rem, curID)
		rem++
	}
	return rem
}

// mergeRefineCopy is a verbatim copy of core's refine Step 3 (Listing 2).
func mergeRefineCopy(key0, id, remID mem.Words, remCount int, precise mem.Space, finalKey, finalID mem.Words) {
	n := id.Len()
	inREM := precise.Alloc(max(n, 1))
	for i := 0; i < remCount; i++ {
		inREM.Set(int(remID.Get(i)), 1)
	}
	lisPtr, remPtr, out := 0, 0, 0
	for lisPtr < n {
		for lisPtr < n && inREM.Get(int(id.Get(lisPtr))) != 0 {
			lisPtr++
		}
		if lisPtr >= n {
			break
		}
		lisID := id.Get(lisPtr)
		lisKey := key0.Get(int(lisID))
		if remPtr < remCount {
			remIDv := remID.Get(remPtr)
			if remKey := key0.Get(int(remIDv)); remKey < lisKey {
				finalID.Set(out, remIDv)
				finalKey.Set(out, remKey)
				remPtr++
				out++
				continue
			}
		}
		finalID.Set(out, lisID)
		finalKey.Set(out, lisKey)
		lisPtr++
		out++
	}
	for remPtr < remCount {
		remIDv := remID.Get(remPtr)
		finalID.Set(out, remIDv)
		finalKey.Set(out, key0.Get(int(remIDv)))
		remPtr++
		out++
	}
}

// mergeRefineOffByOne is mergeRefineCopy with the seeded defect: the REM
// stream pointer starts at 1, silently dropping the smallest remainder
// element from the output (its slot is never written).
func mergeRefineOffByOne(key0, id, remID mem.Words, remCount int, precise mem.Space, finalKey, finalID mem.Words) {
	n := id.Len()
	inREM := precise.Alloc(max(n, 1))
	for i := 0; i < remCount; i++ {
		inREM.Set(int(remID.Get(i)), 1)
	}
	lisPtr, out := 0, 0
	remPtr := 1 // BUG: off by one, skips remID[0]
	if remCount == 0 {
		remPtr = 0
	}
	for lisPtr < n {
		for lisPtr < n && inREM.Get(int(id.Get(lisPtr))) != 0 {
			lisPtr++
		}
		if lisPtr >= n {
			break
		}
		lisID := id.Get(lisPtr)
		lisKey := key0.Get(int(lisID))
		if remPtr < remCount {
			remIDv := remID.Get(remPtr)
			if remKey := key0.Get(int(remIDv)); remKey < lisKey {
				finalID.Set(out, remIDv)
				finalKey.Set(out, remKey)
				remPtr++
				out++
				continue
			}
		}
		finalID.Set(out, lisID)
		finalKey.Set(out, lisKey)
		lisPtr++
		out++
	}
	for remPtr < remCount {
		remIDv := remID.Get(remPtr)
		finalID.Set(out, remIDv)
		finalKey.Set(out, key0.Get(int(remIDv)))
		remPtr++
		out++
	}
}

// runPipeline mirrors core.Run stage by stage — same seeds, same stage
// snapshots — with a pluggable merge.
func runPipeline(keys []uint32, alg sorts.Algorithm, tv float64, seed uint64, merge mergeFunc) core.Result {
	n := len(keys)
	precise := mem.NewPreciseSpace()
	approx := mem.NewApproxSpaceAt(tv, seed^0x517cc1b727220a95)
	report := &core.Report{
		Algorithm: alg.Name(), N: n, T: tv,
		PostApproxRem: -1, PostApproxErrorRate: -1,
	}

	key0 := precise.Alloc(n)
	mem.Load(key0, keys)
	id := precise.Alloc(n)
	for i := 0; i < n; i++ {
		id.Set(i, uint32(i))
	}
	precise.ResetStats()

	var prevA, prevP mem.Stats
	takeDelta := func() core.StageBreakdown {
		a, p := approx.Stats(), precise.Stats()
		d := core.StageBreakdown{Approx: a.Sub(prevA), Precise: p.Sub(prevP)}
		prevA, prevP = a, p
		return d
	}

	keyA := approx.Alloc(n)
	mem.Copy(keyA, key0)
	report.Prep = takeDelta()

	env := sorts.Env{KeySpace: approx, IDSpace: precise, R: rng.New(seed ^ 0x2545f4914f6cdd1d)}
	alg.Sort(sorts.Pair{Keys: keyA, IDs: id}, env)
	report.ApproxSort = takeDelta()

	remID := precise.Alloc(max(n, 1))
	rem := findREMCopy(key0, id, remID)
	report.RemTilde = rem
	report.RefineFind = takeDelta()

	alg.SortIDs(remID, rem, func(rid uint32) uint32 { return key0.Get(int(rid)) }, env)
	report.RefineSort = takeDelta()

	finalKey := precise.Alloc(n)
	finalID := precise.Alloc(n)
	merge(key0, id, remID, rem, precise, finalKey, finalID)
	report.RefineMerge = takeDelta()

	out := core.Result{Report: report, Keys: mem.PeekAll(finalKey), IDs: mem.PeekAll(finalID)}
	report.Sorted = sortedness.IsSorted(out.Keys)
	return out
}

const (
	mutationN    = 800
	mutationT    = 0.1
	mutationSeed = 20160626 // pinned; the paper's venue date
)

// TestMutationPipelineFaithful proves the copied pipeline is a true
// replica: its result must pass the full checker, and must bit-match what
// core.Run itself produces under the same seeds.
func TestMutationPipelineFaithful(t *testing.T) {
	keys := dataset.Uniform(mutationN, 99)
	alg := sorts.MSD{Bits: 6}
	res := runPipeline(keys, alg, mutationT, mutationSeed, mergeRefineCopy)
	if res.Report.RemTilde == 0 {
		t.Fatal("pilot produced Rem~ = 0; pick a harsher T so the mutation can manifest")
	}
	if err := Check(keys, res).Err(); err != nil {
		t.Fatalf("faithful copy failed verification — copy has drifted from core: %v", err)
	}
	want, err := core.Run(keys, core.Config{Algorithm: alg, T: mutationT, Seed: mutationSeed})
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffKeys(want.Keys, res.Keys); d != nil {
		t.Fatalf("copied pipeline diverges from core.Run: %v", d)
	}
}

// TestMutationIsCaught seeds the off-by-one and asserts the checker
// reports it — both the corrupted output and the broken write accounting.
func TestMutationIsCaught(t *testing.T) {
	keys := dataset.Uniform(mutationN, 99)
	res := runPipeline(keys, sorts.MSD{Bits: 6}, mutationT, mutationSeed, mergeRefineOffByOne)
	rep := Check(keys, res)
	if rep.OK() {
		t.Fatal("checker passed a run with a known off-by-one in the refine merge")
	}
	for _, code := range []string{"oracle-diff", "not-permutation", "merge-writes"} {
		if !hasCode(rep, code) {
			t.Errorf("expected violation %q, got %v", code, rep.Violations)
		}
	}
}
