package verify

import (
	"fmt"
	"math"
	"sort"
)

// Tolerance kinds for golden-metric comparison.
const (
	// TolExact requires bit-identical values — counts, booleans, modes.
	TolExact = "exact"
	// TolRel allows a relative deviation of Eps — simulated nanos,
	// energy, and ratio metrics, where cross-platform float association
	// may differ harmlessly.
	TolRel = "rel"
)

// Tolerance declares how much a metric may drift from its golden value.
// The zero value means exact.
type Tolerance struct {
	Kind string  `json:"kind,omitempty"`
	Eps  float64 `json:"eps,omitempty"`
}

func (t Tolerance) String() string {
	if t.Kind == TolRel {
		return fmt.Sprintf("rel %g", t.Eps)
	}
	return TolExact
}

// within reports whether got is acceptable against want.
func (t Tolerance) within(want, got float64) bool {
	switch t.Kind {
	case TolRel:
		if want == got { //nolint:floatord // exact-equality fast path of the tolerance gate itself
			return true
		}
		scale := math.Max(math.Abs(want), math.Abs(got))
		return math.Abs(want-got) <= t.Eps*scale
	default: // exact
		return want == got //nolint:floatord // TolExact's contract is bit-exact equality by definition
	}
}

// Metric is one golden-gated scalar. Names are hierarchical
// ("fig9/msd-6/T=0.055/write_reduction") so reports group naturally and
// stay byte-stable under sorting.
type Metric struct {
	Name  string    `json:"name"`
	Value float64   `json:"value"`
	Tol   Tolerance `json:"tol,omitempty"`
}

// Exact returns an exact-compare metric.
func Exact(name string, value float64) Metric {
	return Metric{Name: name, Value: value}
}

// Rel returns a metric compared under relative tolerance eps.
func Rel(name string, value float64, eps float64) Metric {
	return Metric{Name: name, Value: value, Tol: Tolerance{Kind: TolRel, Eps: eps}}
}

// SortMetrics orders metrics by name, the canonical report order.
func SortMetrics(ms []Metric) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
}

// Drift is one golden comparison failure.
type Drift struct {
	Name string  `json:"name"`
	Want float64 `json:"want"`
	Got  float64 `json:"got"`
	// Tol is the tolerance the comparison ran under (the freshly
	// collected metric's declaration, never the golden file's — a
	// stale or tampered golden cannot loosen the gate).
	Tol Tolerance `json:"tol,omitempty"`
	// Missing marks a golden metric the current run no longer
	// produces; Extra marks a new metric absent from the golden file.
	// Both fail the gate: silently growing or shrinking the grid is
	// itself a regression until the goldens are regenerated.
	Missing bool `json:"missing,omitempty"`
	Extra   bool `json:"extra,omitempty"`
}

// String implements fmt.Stringer.
func (d Drift) String() string {
	switch {
	case d.Missing:
		return fmt.Sprintf("%s: golden metric missing from this run", d.Name)
	case d.Extra:
		return fmt.Sprintf("%s: new metric not in goldens (value %v); rerun with -update", d.Name, d.Got)
	default:
		return fmt.Sprintf("%s: want %v, got %v (tolerance %s)", d.Name, d.Want, d.Got, d.Tol)
	}
}

// CompareMetrics diffs a freshly collected metric set against the golden
// set and returns every drift, sorted by name (empty means the gate
// passes). Tolerances come from got — the code under test — so the golden
// file only pins values.
func CompareMetrics(golden, got []Metric) []Drift {
	goldenByName := make(map[string]Metric, len(golden))
	for _, m := range golden {
		goldenByName[m.Name] = m
	}
	var drifts []Drift
	seen := make(map[string]bool, len(got))
	for _, m := range got {
		seen[m.Name] = true
		g, ok := goldenByName[m.Name]
		if !ok {
			drifts = append(drifts, Drift{Name: m.Name, Got: m.Value, Extra: true})
			continue
		}
		if !m.Tol.within(g.Value, m.Value) {
			drifts = append(drifts, Drift{Name: m.Name, Want: g.Value, Got: m.Value, Tol: m.Tol})
		}
	}
	for _, m := range golden {
		if !seen[m.Name] {
			drifts = append(drifts, Drift{Name: m.Name, Want: m.Value, Missing: true})
		}
	}
	sort.Slice(drifts, func(i, j int) bool { return drifts[i].Name < drifts[j].Name })
	return drifts
}
