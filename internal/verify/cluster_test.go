package verify

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"approxsort/internal/cluster"
)

func leBytes(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[4*i:], k)
	}
	return out
}

func drain(r io.Reader) error {
	_, err := io.Copy(io.Discard, iotest{r})
	return err
}

// iotest forces small reads so fragment carry paths run.
type iotest struct{ r io.Reader }

func (t iotest) Read(p []byte) (int, error) {
	if len(p) > 3 {
		p = p[:3]
	}
	return t.r.Read(p)
}

func TestRangeReaderAcceptsInRange(t *testing.T) {
	keys := []uint32{10, 10, 15, 20}
	rr := NewRangeReader(bytes.NewReader(leBytes(keys)), "shard 0", 10, 20, 4)
	if err := drain(rr); err != nil {
		t.Fatal(err)
	}
	if rr.Records() != 4 {
		t.Fatalf("Records = %d", rr.Records())
	}
}

func TestRangeReaderRejects(t *testing.T) {
	cases := map[string]struct {
		keys   []uint32
		expect int64
		want   string
	}{
		"below range":   {[]uint32{5}, 1, "outside assigned range"},
		"above range":   {[]uint32{25}, 1, "outside assigned range"},
		"not sorted":    {[]uint32{15, 12}, 2, "not sorted"},
		"short stream":  {[]uint32{15}, 2, "ended at 1 records"},
		"excess stream": {[]uint32{15, 16, 17}, 2, "exceeds expected"},
	}
	for name, tc := range cases {
		rr := NewRangeReader(bytes.NewReader(leBytes(tc.keys)), "shard 1", 10, 20, tc.expect)
		err := drain(rr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
	// Misaligned stream.
	rr := NewRangeReader(bytes.NewReader(leBytes([]uint32{15})[:3]), "shard 2", 0, 20, -1)
	if err := drain(rr); err == nil || !strings.Contains(err.Error(), "mid-record") {
		t.Errorf("misaligned: err = %v", err)
	}
}

func goodClusterStats() cluster.Stats {
	return cluster.Stats{
		Records:   100,
		Splitters: []uint32{1000, 2000},
		Shards: []cluster.ShardStat{
			{Node: "a", JobID: "j1", Lo: 0, Hi: 1000, Records: 30, Verified: true, WriteNanos: 5},
			{Node: "b", JobID: "j2", Lo: 1000, Hi: 2000, Records: 40, Verified: true, WriteNanos: 5},
			{Node: "c", JobID: "j3", Lo: 2000, Hi: 1<<32 - 1, Records: 30, Verified: true, WriteNanos: 5},
		},
		MergeWrites:     100,
		MergeWriteNanos: 7,
		Verified:        true,
	}
}

func TestCheckClusterStatsPasses(t *testing.T) {
	if err := CheckClusterStats(goodClusterStats()).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckClusterStatsCatches(t *testing.T) {
	cases := map[string]func(*cluster.Stats){
		"lost records":      func(s *cluster.Stats) { s.Shards[1].Records-- },
		"unverified shard":  func(s *cluster.Stats) { s.Shards[2].Verified = false },
		"range gap":         func(s *cluster.Stats) { s.Shards[1].Lo = 1001 },
		"wrong splitter":    func(s *cluster.Stats) { s.Splitters[0] = 999 },
		"open upper bound":  func(s *cluster.Stats) { s.Shards[2].Hi = 3000 },
		"inflated merge":    func(s *cluster.Stats) { s.MergeWrites = 200 },
		"free merge":        func(s *cluster.Stats) { s.MergeWriteNanos = 0 },
		"splitter count":    func(s *cluster.Stats) { s.Splitters = s.Splitters[:1] },
		"unverified result": func(s *cluster.Stats) { s.Verified = false },
	}
	for name, mutate := range cases {
		st := goodClusterStats()
		mutate(&st)
		if err := CheckClusterStats(st).Err(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
