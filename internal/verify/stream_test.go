package verify

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"approxsort/internal/core"
	"approxsort/internal/dataset"
	"approxsort/internal/extsort"
	"approxsort/internal/memmodel"
	"approxsort/internal/sorts"
)

func mlcIdentities() memmodel.Identities {
	return memmodel.MustGet(memmodel.PCMMLC).Identities(memmodel.Point{})
}

func encodeStream(keys []uint32) []byte {
	out := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(out[i*4:], k)
	}
	return out
}

func extsortConfig(t *testing.T) extsort.Config {
	return extsort.Config{
		Core:     core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.07, Seed: 11},
		RunSize:  2000,
		FanIn:    4,
		TempDir:  t.TempDir(),
		Verifier: Auditor{ID: mlcIdentities()},
	}
}

// TestAuditorEndToEnd drives every formation mode through the full audit
// chain a streaming job uses: per-run Auditor, StreamChecker on the
// output, CheckExtsortStats on the totals.
func TestAuditorEndToEnd(t *testing.T) {
	keys := dataset.Uniform(15000, 3)
	for _, tc := range []struct {
		name string
		mut  func(*extsort.Config)
	}{
		{"hybrid", func(*extsort.Config) {}},
		{"refine-at-merge", func(c *extsort.Config) { c.RefineAtMerge = true }},
		{"precise", func(c *extsort.Config) { c.Precise = true }},
		{"chunk", func(c *extsort.Config) { c.Formation = extsort.FormationChunk }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := extsortConfig(t)
			tc.mut(&cfg)
			var out bytes.Buffer
			sc := NewStreamChecker(&out)
			stats, err := extsort.SortStream(bytes.NewReader(encodeStream(keys)), sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Finish(stats.Records); err != nil {
				t.Fatal(err)
			}
			if rep := CheckExtsortStats(stats); !rep.OK() {
				t.Fatalf("stats audit failed: %v", rep.Violations)
			}
			if rep := CheckOutput(keys, decodeStream(out.Bytes())); !rep.OK() {
				t.Fatalf("output audit failed: %v", rep.Violations)
			}
		})
	}
}

func decodeStream(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func cleanParts(t *testing.T) ([]uint32, core.Parts) {
	t.Helper()
	keys := dataset.Uniform(4000, 7)
	parts, err := core.RunParts(keys, core.Config{Algorithm: sorts.MSD{Bits: 6}, T: 0.07, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return keys, parts
}

func TestCheckRunPartsClean(t *testing.T) {
	keys, parts := cleanParts(t)
	rep := CheckRunParts(keys, parts, mlcIdentities())
	if !rep.OK() {
		t.Fatalf("clean parts failed audit: %v", rep.Violations)
	}
	if rep.Checked < 10 {
		t.Errorf("only %d checks ran", rep.Checked)
	}
}

// TestCheckRunPartsMutations plants one defect per case and demands the
// audit catch it with the right violation code.
func TestCheckRunPartsMutations(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*core.Parts)
		code string
	}{
		{"unsorted-lis", func(p *core.Parts) {
			if len(p.LisKeys) > 1 {
				p.LisKeys[0], p.LisKeys[len(p.LisKeys)-1] = p.LisKeys[len(p.LisKeys)-1]+1, p.LisKeys[0]
			}
		}, "parts-unsorted"},
		{"unsorted-rem", func(p *core.Parts) {
			if len(p.RemKeys) > 1 {
				p.RemKeys[0] = p.RemKeys[len(p.RemKeys)-1] + 1
			}
		}, "parts-unsorted"},
		{"dropped-record", func(p *core.Parts) {
			p.LisKeys = p.LisKeys[:len(p.LisKeys)-1]
			p.LisIDs = p.LisIDs[:len(p.LisIDs)-1]
		}, "parts-split"},
		{"rem-count-lie", func(p *core.Parts) { p.Report.RemTilde++ }, "parts-split"},
		{"duplicated-id", func(p *core.Parts) {
			// Duplicate the record wholesale so only the permutation
			// check can object.
			p.LisIDs[0] = p.LisIDs[1]
			p.LisKeys[0] = p.LisKeys[1]
		}, "id-not-permutation"},
		{"swapped-key", func(p *core.Parts) { p.RemIDs[0], p.RemIDs[len(p.RemIDs)-1] = p.RemIDs[len(p.RemIDs)-1], p.RemIDs[0] }, "id-key-mismatch"},
		{"merge-traffic", func(p *core.Parts) { p.Report.RefineMerge.Precise.Writes = 1 }, "parts-merge-not-empty"},
		{"find-writes", func(p *core.Parts) { p.Report.RefineFind.Precise.Writes++ }, "find-writes"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys, parts := cleanParts(t)
			tc.mut(&parts)
			rep := CheckRunParts(keys, parts, mlcIdentities())
			if rep.OK() {
				t.Fatalf("mutation %s not detected", tc.name)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Code == tc.code {
					found = true
				}
			}
			if !found {
				t.Errorf("mutation %s: want code %q, got %v", tc.name, tc.code, rep.Violations)
			}
		})
	}
}

func TestStreamCheckerFragmentedWrites(t *testing.T) {
	data := encodeStream([]uint32{1, 5, 5, 9, 100})
	var out bytes.Buffer
	sc := NewStreamChecker(&out)
	// Deliver in pathological chunk sizes that split words.
	for i := 0; i < len(data); {
		n := 3
		if i+n > len(data) {
			n = len(data) - i
		}
		if _, err := sc.Write(data[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := sc.Finish(5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("checker altered the forwarded bytes")
	}
}

func TestStreamCheckerCatchesDisorder(t *testing.T) {
	sc := NewStreamChecker(nil)
	if _, err := sc.Write(encodeStream([]uint32{4, 2})); err == nil {
		t.Fatal("decreasing stream accepted")
	}
	// The error is sticky.
	if _, err := sc.Write(encodeStream([]uint32{9})); err == nil {
		t.Fatal("write after violation accepted")
	}
}

func TestStreamCheckerFinish(t *testing.T) {
	sc := NewStreamChecker(nil)
	sc.Write(encodeStream([]uint32{1, 2, 3}))
	if err := sc.Finish(4); err == nil || !strings.Contains(err.Error(), "expected 4") {
		t.Errorf("count mismatch not reported: %v", err)
	}
	sc = NewStreamChecker(nil)
	sc.Write([]byte{1, 2, 3})
	if err := sc.Finish(0); err == nil {
		t.Error("trailing partial word accepted")
	}
	sc = NewStreamChecker(nil)
	if err := sc.Finish(0); err != nil {
		t.Errorf("empty stream rejected: %v", err)
	}
}

func cleanStats(t *testing.T) extsort.Stats {
	t.Helper()
	keys := dataset.Uniform(12000, 9)
	cfg := extsortConfig(t)
	var out bytes.Buffer
	stats, err := extsort.SortStream(bytes.NewReader(encodeStream(keys)), &out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestCheckExtsortStatsMutations(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*extsort.Stats)
		code string
	}{
		{"records-lie", func(s *extsort.Stats) { s.Records++ }, "extsort-ledger"},
		{"rem-lie", func(s *extsort.Stats) { s.RemTildeTotal-- }, "extsort-ledger"},
		{"nanos-lie", func(s *extsort.Stats) { s.HybridWriteNanos *= 1.5 }, "extsort-ledger"},
		{"dropped-run", func(s *extsort.Stats) { s.PerRun = s.PerRun[1:] }, "extsort-ledger"},
		{"merge-writes-lie", func(s *extsort.Stats) { s.MergeWrites++ }, "merge-accounting"},
		{"merge-nanos-lie", func(s *extsort.Stats) { s.MergeWriteNanos /= 2 }, "merge-accounting"},
		{"high-water-lie", func(s *extsort.Stats) { s.DiskHighWater = s.DiskBytesWritten + 1 }, "disk-ledger"},
		{"hybrid-flag-lie", func(s *extsort.Stats) { s.Hybrid = !s.Hybrid }, "extsort-ledger"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stats := cleanStats(t)
			tc.mut(&stats)
			rep := CheckExtsortStats(stats)
			if rep.OK() {
				t.Fatalf("mutation %s not detected", tc.name)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Code == tc.code {
					found = true
				}
			}
			if !found {
				t.Errorf("mutation %s: want code %q, got %v", tc.name, tc.code, rep.Violations)
			}
		})
	}
}

func TestAuditorRejectsTamperedPreciseRun(t *testing.T) {
	a := Auditor{}
	in := []uint32{3, 1, 2}
	if err := a.VerifyPreciseRun(in, []uint32{1, 2, 3}); err != nil {
		t.Fatalf("clean precise run rejected: %v", err)
	}
	if err := a.VerifyPreciseRun(in, []uint32{1, 2, 4}); err == nil {
		t.Fatal("tampered precise run accepted")
	}
}
