// Package verify makes the paper's correctness claims executable. The
// abstract's contract is that approx-refine "still guarantees to have the
// fully precise sorted sequence" while the refine stage spends fewer than
// 3n precise data writes plus the REMID sort (Sections 4–5, Equation 4).
// Nothing in a Report proves that by itself, so this package re-derives
// every invariant from first principles and checks a finished run against
// them:
//
//   - the output keys are exactly the reference precise sort of the input
//     (differential oracle, oracle.go);
//   - the output is a permutation of the input, the ID array is a
//     permutation of [0, n), and Keys[i] == input[IDs[i]] — record
//     identity survived the pipeline;
//   - Rem accounting holds: RemTilde ∈ [0, n], the exact post-approx Rem
//     (when measured) never exceeds the heuristic Rem~, and the find
//     stage wrote exactly its share of precise words;
//   - the refine stage's data writes obey the structural identity
//     2n + 2·Rem~ (heuristic) and the paper's 3n envelope whenever
//     Rem~ ≤ n/2, and never touch approximate memory at all;
//   - per-stage StageBreakdown stats reconcile: precise latency/energy
//     are exact multiples of the write count, MLC approximate energy
//     tracks latency, pulse counts cover every write, and the phase
//     roll-ups equal the sum of the five stages.
//
// Check is cheap relative to the instrumented runs it audits (O(n log n)
// host time, no simulated memory traffic), so the experiment sweeps and
// the sortd service run it on every result; cmd/regress and the fuzz
// targets drive arbitrary inputs through it.
package verify

import (
	"fmt"
	"math"

	"approxsort/internal/core"
	"approxsort/internal/mem"
	"approxsort/internal/memmodel"
	"approxsort/internal/mlc"
	"approxsort/internal/sortedness"
	"approxsort/internal/sorts"
)

// Violation is one failed invariant. Code is a stable machine-readable
// identifier (tests and the regress gate match on it); Detail carries the
// indices and values a human needs to debug the failure.
type Violation struct {
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Code + ": " + v.Detail }

// Report collects the outcome of one verification pass.
type Report struct {
	// N is the verified run's input size.
	N int `json:"n"`
	// Checked counts the invariants evaluated (skipped checks — e.g.
	// baseline identities on a baseline-free run — are excluded).
	Checked int `json:"checked"`
	// Violations lists every failed invariant, in check order.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether every evaluated invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when OK, otherwise an error summarizing the first
// violation (and how many more there are).
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	if len(r.Violations) == 1 {
		return fmt.Errorf("verify: %s", r.Violations[0])
	}
	return fmt.Errorf("verify: %s (and %d more violations)", r.Violations[0], len(r.Violations)-1)
}

func (r *Report) check(ok bool, code, format string, args ...any) {
	r.Checked++
	if !ok {
		r.Violations = append(r.Violations, Violation{Code: code, Detail: fmt.Sprintf(format, args...)})
	}
}

// relEps is the tolerance for floating-point accounting identities. The
// simulator accumulates per-access constants, so the sums are exact in
// practice; the epsilon only absorbs association-order noise.
const relEps = 1e-9

func closeEnough(a, b float64) bool {
	if a == b { //nolint:floatord // exact-equality fast path of the tolerance helper itself
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relEps*scale
}

// Check audits one finished approx-refine run against every invariant the
// paper promises, inferring the backend identity set from the report:
// Report.T > 0 means the MLC PCM model, anything else gets only the
// backend-independent identities. Callers that know their backend should
// prefer CheckRefineRun with the backend's own identity set — it audits
// strictly more. Check remains for runs whose backend is unknown at the
// call site (fuzz targets, raw core.Run users).
func Check(input []uint32, res core.Result) *Report {
	var id memmodel.Identities
	if res.Report != nil && res.Report.T > 0 {
		id = memmodel.MustGet(memmodel.PCMMLC).Identities(memmodel.Point{})
	}
	return CheckRefineRun(input, res, id)
}

// CheckRefineRun audits one finished approx-refine run against every
// invariant the paper promises, holding the approximate-space stats to
// the given backend identity set (memmodel.Backend.Identities). input
// must be the exact key slice passed to core.Run.
func CheckRefineRun(input []uint32, res core.Result, id memmodel.Identities) *Report {
	r := res.Report
	rep := &Report{N: len(input)}
	n := len(input)

	rep.check(r != nil, "result-shape", "Result.Report is nil")
	if r == nil {
		return rep
	}
	rep.check(r.N == n, "result-shape", "Report.N = %d, input has %d keys", r.N, n)
	rep.check(len(res.Keys) == n, "result-shape", "output has %d keys, want %d", len(res.Keys), n)
	rep.check(len(res.IDs) == n, "result-shape", "output has %d IDs, want %d", len(res.IDs), n)
	if len(res.Keys) != n || len(res.IDs) != n {
		return rep // elementwise checks below would index out of range
	}

	checkOutput(rep, input, res.Keys)

	// Record identity: IDs is a permutation of [0, n) and every output
	// key is the original key of the record it claims to be.
	seen := make([]bool, n)
	idsOK := true
	for i, id := range res.IDs {
		if int(id) >= n || seen[id] {
			rep.check(false, "id-not-permutation",
				"IDs[%d] = %d is out of range or repeated", i, id)
			idsOK = false
			break
		}
		seen[id] = true
	}
	if idsOK {
		rep.check(true, "id-not-permutation", "")
		for i, id := range res.IDs {
			if input[id] != res.Keys[i] {
				rep.check(false, "id-key-mismatch",
					"Keys[%d] = %d but input[IDs[%d]=%d] = %d",
					i, res.Keys[i], i, id, input[id])
				break
			}
		}
	}

	rep.check(r.Sorted == sortedness.IsSorted(res.Keys), "sorted-flag",
		"Report.Sorted = %v disagrees with the output", r.Sorted)

	checkRem(rep, r)
	checkRefineWrites(rep, r)
	checkStages(rep, r, id)
	return rep
}

// checkOutput runs the order and permutation invariants plus the
// differential oracle over an output key sequence. It is the shared core
// of Check and CheckOutput.
func checkOutput(rep *Report, input, keys []uint32) {
	sorted := sortedness.IsSorted(keys)
	rep.check(sorted, "output-unsorted", "output keys are not non-decreasing")
	rep.check(sortedness.SameMultiset(input, keys), "not-permutation",
		"output keys are not a permutation of the input")
	if d := DiffKeys(ReferenceSort(input), keys); d != nil {
		rep.check(false, "oracle-diff", "%s", d)
	} else {
		rep.check(true, "oracle-diff", "")
	}
}

// checkRem audits the Rem / Rem~ accounting.
func checkRem(rep *Report, r *core.Report) {
	rep.check(r.RemTilde >= 0 && r.RemTilde <= r.N, "rem-range",
		"RemTilde = %d out of [0, %d]", r.RemTilde, r.N)
	// The heuristic's remainder can never undercut the true Rem of the
	// nearly sorted view: removing RemTilde elements left a
	// non-decreasing subsequence, and Rem is the minimum such removal.
	if r.PostApproxRem >= 0 {
		rep.check(r.PostApproxRem <= r.RemTilde, "rem-vs-exact",
			"exact post-approx Rem %d exceeds heuristic Rem~ %d",
			r.PostApproxRem, r.RemTilde)
	}
}

// checkRefineWrites audits the refine stage's precise-write budget — the
// identities behind Equation 4's refine term Rem~ + α(Rem~) + Rem~ + 2n.
func checkRefineWrites(rep *Report, r *core.Report) {
	n, rem := r.N, r.RemTilde

	// Find step: the heuristic writes exactly Rem~ words (the REMID
	// array); the exact-LIS ablation adds the n-word parent and tail
	// bookkeeping arrays (2n + Rem writes total).
	wantFind := rem
	if r.ExactLIS {
		wantFind = 2*n + rem
	}
	if n >= 2 { // tiny inputs skip the scan entirely
		rep.check(r.RefineFind.Precise.Writes == wantFind, "find-writes",
			"find stage wrote %d precise words, want %d (exactLIS=%v)",
			r.RefineFind.Precise.Writes, wantFind, r.ExactLIS)
	}

	// Merge step: Rem~ REMIDset flags plus the 2n-word final output.
	if n > 0 {
		rep.check(r.RefineMerge.Precise.Writes == 2*n+rem, "merge-writes",
			"merge stage wrote %d precise words, want 2n+Rem~ = %d",
			r.RefineMerge.Precise.Writes, 2*n+rem)
	}

	// The paper's headline envelope: outside the REMID sort, the refine
	// stage spends fewer than 3n precise writes whenever the remainder
	// stays below n/2 — the operating region of every evaluated
	// configuration (Figure 9's Rem~ ratios top out near 30%).
	if !r.ExactLIS && n >= 2 && 2*rem <= n {
		dataWrites := r.RefineFind.Precise.Writes + r.RefineMerge.Precise.Writes
		rep.check(dataWrites <= 3*n, "refine-3n",
			"refine data writes %d exceed the 3n = %d bound at Rem~ = %d",
			dataWrites, 3*n, rem)
	}

	// The refine stage never touches approximate memory: it reads
	// precise Key0 and writes precise outputs only (Section 4.2 — the
	// whole point is that corrupted keys stop mattering after the
	// approx stage).
	for _, st := range []struct {
		name string
		b    core.StageBreakdown
	}{
		{"find", r.RefineFind}, {"sort", r.RefineSort}, {"merge", r.RefineMerge},
	} {
		rep.check(st.b.Approx.Reads == 0 && st.b.Approx.Writes == 0,
			"refine-touches-approx",
			"refine %s stage performed %d approximate reads and %d writes",
			st.name, st.b.Approx.Reads, st.b.Approx.Writes)
	}
}

// checkStages reconciles every stage's Stats with the device model's
// per-access constants and the Report's phase roll-ups. id selects the
// backend-specific approximate-write identities.
func checkStages(rep *Report, r *core.Report, id memmodel.Identities) {
	stages := []struct {
		name string
		b    core.StageBreakdown
	}{
		{"prep", r.Prep}, {"approx-sort", r.ApproxSort},
		{"refine-find", r.RefineFind}, {"refine-sort", r.RefineSort},
		{"refine-merge", r.RefineMerge},
	}

	var sum core.StageBreakdown
	for _, st := range stages {
		checkPreciseStats(rep, st.name, st.b.Precise)
		checkApproxStats(rep, st.name, st.b.Approx, id)
		sum.Approx.Add(st.b.Approx)
		sum.Precise.Add(st.b.Precise)
	}

	// Preparation copies Key0 into approximate memory: exactly n
	// approximate writes against n precise reads, nothing else.
	rep.check(r.Prep.Approx.Writes == r.N, "prep-writes",
		"prep stage wrote %d approximate words, want n = %d", r.Prep.Approx.Writes, r.N)
	rep.check(r.Prep.Precise.Writes == 0, "prep-writes",
		"prep stage wrote %d precise words, want 0", r.Prep.Precise.Writes)

	// Phase roll-ups must be the plain sum of the five stages.
	total := r.Total()
	rep.check(total.Writes() == sum.Writes() &&
		closeEnough(total.WriteNanos(), sum.WriteNanos()) &&
		closeEnough(total.WriteEnergy(), sum.WriteEnergy()) &&
		closeEnough(total.AccessNanos(), sum.AccessNanos()),
		"phase-reconcile",
		"Total() %+v does not equal the sum of the five stages %+v", total, sum)

	// Baseline, when present, is a pure precise-space run.
	if r.Baseline.Writes > 0 || r.Baseline.Reads > 0 {
		checkPreciseStats(rep, "baseline", r.Baseline)
	}
}

// checkPreciseStats verifies a precise region's Stats against the fixed
// device constants: every write costs mlc.PreciseWriteNanos and one energy
// unit, every read mlc.ReadNanos; precise writes never corrupt and issue
// no P&V pulses.
func checkPreciseStats(rep *Report, stage string, s mem.Stats) {
	rep.check(s.Reads >= 0 && s.Writes >= 0 && s.ReadNanos >= 0 && s.WriteNanos >= 0,
		"stage-negative", "%s precise stats have negative fields: %v", stage, s)
	rep.check(closeEnough(s.WriteNanos, float64(s.Writes)*mlc.PreciseWriteNanos),
		"precise-accounting", "%s precise WriteNanos %g != Writes %d × %g",
		stage, s.WriteNanos, s.Writes, mlc.PreciseWriteNanos)
	rep.check(closeEnough(s.WriteEnergy, float64(s.Writes)),
		"precise-accounting", "%s precise WriteEnergy %g != Writes %d",
		stage, s.WriteEnergy, s.Writes)
	rep.check(closeEnough(s.ReadNanos, float64(s.Reads)*mlc.ReadNanos),
		"precise-accounting", "%s precise ReadNanos %g != Reads %d × %g",
		stage, s.ReadNanos, s.Reads, mlc.ReadNanos)
	rep.check(s.Iters == 0 && s.Corrupted == 0,
		"precise-accounting", "%s precise stats report pulses/corruption: %v", stage, s)
}

// checkApproxStats verifies an approximate region's Stats: the
// backend-independent identities always, plus whichever backend-specific
// identities the memmodel.Identities set asserts. The zero Identities —
// used when the backend is unknown, e.g. a raw core.Run with a custom
// NewSpace — checks only the generic subset.
func checkApproxStats(rep *Report, stage string, s mem.Stats, id memmodel.Identities) {
	rep.check(s.Reads >= 0 && s.Writes >= 0 && s.ReadNanos >= 0 && s.WriteNanos >= 0,
		"stage-negative", "%s approx stats have negative fields: %v", stage, s)
	rep.check(s.Corrupted <= s.Writes,
		"approx-accounting", "%s approx Corrupted %d exceeds Writes %d",
		stage, s.Corrupted, s.Writes)
	readNanos := mlc.ReadNanos
	if id.ReadNanosPerRead > 0 {
		readNanos = id.ReadNanosPerRead
	}
	rep.check(closeEnough(s.ReadNanos, float64(s.Reads)*readNanos),
		"approx-accounting", "%s approx ReadNanos %g != Reads %d × %g",
		stage, s.ReadNanos, s.Reads, readNanos)
	if id.EnergyTracksLatency {
		rep.check(closeEnough(s.WriteEnergy*mlc.PreciseWriteNanos, s.WriteNanos),
			"approx-accounting", "%s approx WriteEnergy %g does not track WriteNanos %g",
			stage, s.WriteEnergy, s.WriteNanos)
	}
	if id.PulsePerWrite {
		rep.check(s.Iters >= s.Writes,
			"approx-accounting", "%s approx issued %d pulses for %d writes (P&V needs ≥ 1 each)",
			stage, s.Iters, s.Writes)
	}
	if id.FixedWriteLatency {
		rep.check(closeEnough(s.WriteNanos, float64(s.Writes)*mlc.PreciseWriteNanos),
			"approx-accounting", "%s approx WriteNanos %g != Writes %d × %g (fixed-latency backend)",
			stage, s.WriteNanos, s.Writes, mlc.PreciseWriteNanos)
	}
	if id.EnergyPerWrite > 0 {
		rep.check(closeEnough(s.WriteEnergy, float64(s.Writes)*id.EnergyPerWrite),
			"approx-accounting", "%s approx WriteEnergy %g != Writes %d × %g",
			stage, s.WriteEnergy, s.Writes, id.EnergyPerWrite)
	}
}

// CheckAlgorithmWrites audits the approx stage's write counter against
// the algorithm's declared registry profile: when the profile marks Alpha
// as an exact structural count (Profile.ExactWrites — the LSD family,
// where every pass writes each element exactly twice), the approx-sort
// stage must have charged exactly α(n) approximate writes. Profiles
// without ExactWrites (comparison sorts' expectations, MSD's
// data-dependent insertion leaves) and tiny inputs (the sorts return
// before writing at n ≤ 1, where α still reports a full pass structure)
// evaluate no checks. This is the registry-era write-budget identity:
// it comes from the algorithm's declaration, not a hardcoded pass table.
func CheckAlgorithmWrites(alg sorts.Algorithm, r *core.Report) *Report {
	rep := &Report{}
	if r == nil {
		return rep
	}
	rep.N = r.N
	prof, ok := sorts.ProfileOf(alg)
	if !ok || !prof.ExactWrites || prof.Alpha == nil || r.N < 2 {
		return rep
	}
	want := int(prof.Alpha(r.N))
	rep.check(r.ApproxSort.Approx.Writes == want, "alpha-exact",
		"approx stage charged %d approximate writes, want exactly α(%d) = %d for %s",
		r.ApproxSort.Approx.Writes, r.N, want, alg.Name())
	return rep
}

// CheckOutput audits a plain precise-path output (no Report): order,
// permutation, and the differential oracle. The sortd precise executor and
// the fuzz targets use it where no stage accounting exists.
func CheckOutput(input, keys []uint32) *Report {
	rep := &Report{N: len(input)}
	rep.check(len(keys) == len(input), "result-shape",
		"output has %d keys, want %d", len(keys), len(input))
	if len(keys) != len(input) {
		return rep
	}
	checkOutput(rep, input, keys)
	return rep
}

// CheckApproxRun audits an approximate-only sort (the Section 3 /
// Appendix A studies, which never refine): the output and shadow-ID
// arrays must match the input's length, and the IDs — which live in
// precise shadow memory that corruption cannot touch — must still be a
// permutation of [0, n). The approximate space's aggregate stats are held
// to the backend identity set (memmodel.Backend.Identities; the zero
// Identities checks only the backend-independent subset). Key values are
// deliberately unchecked: value corruption is the phenomenon those
// studies measure. A violation means the sort lost or duplicated records
// or mis-accounted its traffic, so every derived metric (ErrorRate, Rem
// ratios, write reductions) would be measuring garbage.
func CheckApproxRun(input, keys []uint32, ids []int, stats mem.Stats, id memmodel.Identities) *Report {
	n := len(input)
	rep := &Report{N: n}
	rep.check(len(keys) == n, "result-shape", "output has %d keys, want %d", len(keys), n)
	rep.check(len(ids) == n, "result-shape", "output has %d IDs, want %d", len(ids), n)
	checkApproxStats(rep, "approx-only", stats, id)
	if len(ids) != n {
		return rep
	}
	seen := make([]bool, n)
	for i, rid := range ids {
		if rid < 0 || rid >= n || seen[rid] {
			rep.check(false, "id-not-permutation",
				"IDs[%d] = %d is out of range or repeated", i, rid)
			return rep
		}
		seen[rid] = true
	}
	rep.check(true, "id-not-permutation", "")
	return rep
}

// CheckPlan audits a planner verdict for service safety: every field the
// API serializes must be finite and inside its documented range.
func CheckPlan(n int, p core.Plan) *Report {
	rep := &Report{N: n}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PredictedWR", p.PredictedWR}, {"P", p.P}, {"PilotRemRatio", p.PilotRemRatio},
	} {
		rep.check(!math.IsNaN(f.v) && !math.IsInf(f.v, 0), "plan-nonfinite",
			"Plan.%s = %v is not finite", f.name, f.v)
	}
	rep.check(p.PilotSize >= 0 && p.PilotSize <= n, "plan-range",
		"PilotSize = %d out of [0, %d]", p.PilotSize, n)
	rep.check(p.PilotRemRatio >= 0 && p.PilotRemRatio <= 1, "plan-range",
		"PilotRemRatio = %v out of [0, 1]", p.PilotRemRatio)
	rep.check(p.PredictedRem >= 0 && p.PredictedRem <= n, "plan-range",
		"PredictedRem = %d out of [0, %d]", p.PredictedRem, n)
	rep.check(p.P >= 0, "plan-range", "P = %v is negative", p.P)
	rep.check(!p.UseHybrid || p.PredictedWR > 0, "plan-range",
		"UseHybrid = true but PredictedWR = %v is not positive", p.PredictedWR)
	return rep
}
