package verify

import (
	"fmt"
	"sort"
)

// ReferenceSort returns the plain precise sort of input — the differential
// oracle every verified run is diffed against. It uses the Go standard
// library, deliberately sharing no code with internal/sorts: a bug in the
// instrumented algorithms or the refine pipeline cannot also hide here.
func ReferenceSort(input []uint32) []uint32 {
	out := make([]uint32, len(input))
	copy(out, input)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diff describes the first divergence between an expected and an actual
// key sequence, plus the total mismatch count.
type Diff struct {
	// Index is the first position where the sequences differ.
	Index int
	// Want and Got are the values at Index.
	Want, Got uint32
	// Mismatches counts every differing position.
	Mismatches int
}

// String implements fmt.Stringer.
func (d *Diff) String() string {
	return fmt.Sprintf("first divergence at [%d]: want %d, got %d (%d positions differ)",
		d.Index, d.Want, d.Got, d.Mismatches)
}

// DiffKeys compares got against want elementwise and returns nil when they
// are identical. Lengths must already match (Check guards that); a length
// mismatch is reported as a diff at the shorter length.
func DiffKeys(want, got []uint32) *Diff {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	var d *Diff
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			if d == nil {
				d = &Diff{Index: i, Want: want[i], Got: got[i]}
			}
			d.Mismatches++
		}
	}
	if len(want) != len(got) {
		if d == nil {
			d = &Diff{Index: n}
		}
		d.Mismatches += len(want) + len(got) - 2*n
	}
	return d
}
