package verify

import (
	"strings"
	"testing"
)

func driftNames(ds []Drift) []string {
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

func TestCompareMetricsCleanPass(t *testing.T) {
	golden := []Metric{
		Exact("fig9/msd-6/rem", 137),
		Rel("fig9/msd-6/write_nanos", 1.0e6, 1e-6),
	}
	got := []Metric{
		Exact("fig9/msd-6/rem", 137),
		Rel("fig9/msd-6/write_nanos", 1.0e6*(1+1e-9), 1e-6),
	}
	if ds := CompareMetrics(golden, got); len(ds) != 0 {
		t.Fatalf("clean comparison drifted: %v", ds)
	}
}

func TestCompareMetricsExactIsExact(t *testing.T) {
	golden := []Metric{Exact("rem", 137)}
	got := []Metric{Exact("rem", 138)}
	ds := CompareMetrics(golden, got)
	if len(ds) != 1 || ds[0].Name != "rem" || ds[0].Want != 137 || ds[0].Got != 138 {
		t.Fatalf("off-by-one count not flagged: %v", ds)
	}
	if s := ds[0].String(); !strings.Contains(s, "want 137") || !strings.Contains(s, "got 138") {
		t.Fatalf("drift string unhelpful: %q", s)
	}
}

func TestCompareMetricsRelTolerance(t *testing.T) {
	golden := []Metric{Rel("nanos", 1000, 1e-3)}
	if ds := CompareMetrics(golden, []Metric{Rel("nanos", 1000.5, 1e-3)}); len(ds) != 0 {
		t.Fatalf("0.05%% drift should pass a 0.1%% gate: %v", ds)
	}
	if ds := CompareMetrics(golden, []Metric{Rel("nanos", 1002, 1e-3)}); len(ds) != 1 {
		t.Fatalf("0.2%% drift should fail a 0.1%% gate: %v", ds)
	}
}

func TestCompareMetricsMissingAndExtraBothFail(t *testing.T) {
	golden := []Metric{Exact("a", 1), Exact("gone", 2)}
	got := []Metric{Exact("a", 1), Exact("new", 3)}
	ds := CompareMetrics(golden, got)
	if len(ds) != 2 {
		t.Fatalf("want 2 drifts (missing + extra), got %v", ds)
	}
	// Drifts come back sorted by name: "gone" < "new".
	if !ds[0].Missing || ds[0].Name != "gone" {
		t.Fatalf("missing golden metric not flagged: %v", ds)
	}
	if !ds[1].Extra || ds[1].Name != "new" {
		t.Fatalf("extra run metric not flagged: %v", ds)
	}
	if s := ds[0].String(); !strings.Contains(s, "missing") {
		t.Fatalf("missing drift string unhelpful: %q", s)
	}
	if s := ds[1].String(); !strings.Contains(s, "-update") {
		t.Fatalf("extra drift string should point at -update: %q", s)
	}
}

func TestCompareMetricsToleranceComesFromRun(t *testing.T) {
	// A tampered golden file declaring a huge tolerance must not loosen
	// the gate: the comparison runs under got's declaration.
	golden := []Metric{Rel("nanos", 1000, 0.5)}
	got := []Metric{Exact("nanos", 1100)}
	ds := CompareMetrics(golden, got)
	if len(ds) != 1 || ds[0].Tol.Kind != "" {
		t.Fatalf("golden-side tolerance leaked into the comparison: %v", ds)
	}
}

func TestSortMetricsCanonicalOrder(t *testing.T) {
	ms := []Metric{Exact("b", 2), Exact("a", 1), Exact("c", 3)}
	SortMetrics(ms)
	if got := []string{ms[0].Name, ms[1].Name, ms[2].Name}; got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("not sorted: %v", got)
	}
}

func TestDriftNamesSorted(t *testing.T) {
	golden := []Metric{Exact("z", 1), Exact("a", 1)}
	got := []Metric{Exact("z", 2), Exact("a", 2)}
	ds := CompareMetrics(golden, got)
	names := driftNames(ds)
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("drifts not name-sorted: %v", names)
	}
}
