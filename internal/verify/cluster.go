package verify

import (
	"encoding/binary"
	"fmt"
	"io"

	"approxsort/internal/cluster"
)

// This file is the verification half of the cluster coordinator's audit
// chain. cluster deliberately does not import verify (the same
// direction extsort keeps): the coordinator exposes the WrapShard and
// StreamAuditor hooks, and the serving layer plugs these checkers in.
//
// The cross-shard chain, end to end: every shard job verified its own
// sort (Auditor per run, StreamChecker on its output, ledger
// reconciliation); RangeReader pins each downloaded shard stream to the
// shard's assigned key range as the merge consumes it; the merged
// output runs through a coordinator StreamChecker; and
// CheckClusterStats reconciles the coordinator's ledger — partition
// counts, shard ranges, and the exact cross-merge write identity.

// RangeReader wraps one shard's sorted output stream, failing the read
// the moment a record is out of the shard's [lo, hi] range (inclusive
// — boundary values may legally land on either side of a splitter),
// decreases, or the stream ends at the wrong record count. It is the
// cluster.Config.WrapShard hook: a shard cannot smuggle keys outside
// its partition past it, so the merged stream's provenance is pinned
// shard by shard.
type RangeReader struct {
	r       io.Reader
	label   string
	lo, hi  uint32
	expect  int64
	records int64
	prev    uint32
	started bool
	frag    [4]byte
	nfrag   int
	err     error
}

// NewRangeReader wraps r; label names the shard in errors; expect < 0
// skips the count check.
func NewRangeReader(r io.Reader, label string, lo, hi uint32, expect int64) *RangeReader {
	return &RangeReader{r: r, label: label, lo: lo, hi: hi, expect: expect}
}

// Records returns how many records have passed.
func (r *RangeReader) Records() int64 { return r.records }

// Read implements io.Reader, validating every complete record that
// passes through.
func (r *RangeReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, rerr := r.r.Read(p)
	b := p[:n]
	if r.nfrag > 0 {
		need := 4 - r.nfrag
		if need > len(b) {
			r.nfrag += copy(r.frag[r.nfrag:], b)
			b = b[len(b):]
		} else {
			copy(r.frag[r.nfrag:], b[:need])
			if err := r.record(binary.LittleEndian.Uint32(r.frag[:])); err != nil {
				return 0, err
			}
			r.nfrag = 0
			b = b[need:]
		}
	}
	for ; len(b) >= 4; b = b[4:] {
		if err := r.record(binary.LittleEndian.Uint32(b)); err != nil {
			return 0, err
		}
	}
	if len(b) > 0 {
		r.nfrag = copy(r.frag[:], b)
	}
	if rerr == io.EOF {
		if r.nfrag != 0 {
			r.err = fmt.Errorf("verify: %s: stream ends mid-record (%d trailing bytes)", r.label, r.nfrag)
			return n, r.err
		}
		if r.expect >= 0 && r.records != r.expect {
			r.err = fmt.Errorf("verify: %s: stream ended at %d records, want %d", r.label, r.records, r.expect)
			return n, r.err
		}
	}
	return n, rerr
}

func (r *RangeReader) record(k uint32) error {
	if k < r.lo || k > r.hi {
		r.err = fmt.Errorf("verify: %s: record %d key %d outside assigned range [%d, %d]",
			r.label, r.records, k, r.lo, r.hi)
		return r.err
	}
	if r.started && k < r.prev {
		r.err = fmt.Errorf("verify: %s: not sorted at record %d: %d after %d", r.label, r.records, k, r.prev)
		return r.err
	}
	if r.expect >= 0 && r.records >= r.expect {
		r.err = fmt.Errorf("verify: %s: stream exceeds expected %d records", r.label, r.expect)
		return r.err
	}
	r.prev = k
	r.started = true
	r.records++
	return nil
}

// WrapShards returns the production cluster.Config.WrapShard hook:
// every shard stream is range-pinned and count-pinned.
func WrapShards() func(shard int, lo, hi uint32, expect int64, r io.Reader) io.Reader {
	return func(shard int, lo, hi uint32, expect int64, r io.Reader) io.Reader {
		return NewRangeReader(r, fmt.Sprintf("shard %d", shard), lo, hi, expect)
	}
}

// CheckClusterStats reconciles a finished cluster sort's ledger: the
// partition counts must conserve the input, the shard ranges must tile
// the key space in splitter order, every shard must have verified its
// own job, and the coordinator's cross-merge must have charged exactly
// one precise write per record.
func CheckClusterStats(st cluster.Stats) *Report {
	rep := &Report{N: int(st.Records)}

	rep.check(st.Records > 0, "cluster-ledger", "Stats.Records = %d", st.Records)
	rep.check(len(st.Shards) >= 1, "cluster-ledger", "no shards in stats")
	rep.check(len(st.Splitters) == len(st.Shards)-1, "cluster-ledger",
		"%d splitters for %d shards", len(st.Splitters), len(st.Shards))
	if len(st.Splitters) != len(st.Shards)-1 {
		return rep
	}

	var sum int64
	for i, sh := range st.Shards {
		sum += sh.Records
		rep.check(sh.Records >= 0, "cluster-ledger", "shard %d has %d records", i, sh.Records)
		rep.check(sh.Lo <= sh.Hi, "cluster-range", "shard %d range [%d, %d] inverted", i, sh.Lo, sh.Hi)
		rep.check(sh.Records == 0 || sh.Verified, "cluster-verify",
			"shard %d (%s job %s) not verified", i, sh.Node, sh.JobID)
		rep.check(sh.Records == 0 || sh.WriteNanos > 0, "cluster-ledger",
			"shard %d sorted %d records but charged no write latency", i, sh.Records)
		if i > 0 {
			rep.check(sh.Lo == st.Shards[i-1].Hi, "cluster-range",
				"shard %d lo %d does not abut shard %d hi %d", i, sh.Lo, i-1, st.Shards[i-1].Hi)
		}
		if i < len(st.Splitters) {
			rep.check(sh.Hi == st.Splitters[i], "cluster-range",
				"shard %d hi %d is not splitter %d", i, sh.Hi, st.Splitters[i])
		}
	}
	rep.check(st.Shards[0].Lo == 0, "cluster-range", "shard 0 lo = %d, want 0", st.Shards[0].Lo)
	last := st.Shards[len(st.Shards)-1]
	rep.check(last.Hi == 1<<32-1, "cluster-range", "last shard hi = %d, want 2^32-1", last.Hi)
	rep.check(sum == st.Records, "cluster-ledger",
		"shard records sum to %d, coordinator routed %d", sum, st.Records)

	// The cross-shard merge is a single pass over one block-staging
	// accountant: exactly one precise write per record.
	rep.check(st.MergeWrites == st.Records, "cluster-merge",
		"MergeWrites = %d, want one precise write per record = %d", st.MergeWrites, st.Records)
	rep.check(st.Records == 0 || st.MergeWriteNanos > 0, "cluster-merge",
		"merge charged no write latency over %d records", st.Records)

	if st.Plan != nil && st.Plan.Sharded != nil {
		rep.check(st.Plan.Sharded.Shards == len(st.Shards), "cluster-plan",
			"plan chose %d shards, coordinator ran %d", st.Plan.Sharded.Shards, len(st.Shards))
	}
	rep.check(st.Verified, "cluster-verify", "Stats.Verified is false")
	return rep
}
